//! The first-class SPB parameter space.
//!
//! [`SpbParams`] names every knob the detector family exposes — the
//! window `N` and dedupe register of the base detector, plus the
//! extended-detector knobs that used to be reachable only through the
//! `ablations` experiment (`ExtSpbConfig`): a saturating-counter burst
//! threshold override, the fraction of the remaining page a burst
//! issues, backward (stack-like) bursts, and cross-page bursts.
//!
//! The type is the contract between the CLI/wire policy grammar
//! (`spb:n=32,dedupe=off,burst=3,frac=0.5`) and the detector
//! configuration: `parse_args` and `label_suffix` round-trip exactly,
//! and `spbsim tune` enumerates its dimensions. All fields are plain
//! integers/bools so the type stays `Copy + Eq + Hash` and its `Debug`
//! rendering (which feeds content-addressed cache keys) is total-ordered
//! and stable.

use crate::detector::SpbConfig;
use crate::extensions::ExtSpbConfig;

/// Inclusive bounds of the detector window `n`.
pub const N_RANGE: (u32, u32) = (1, 1024);
/// Inclusive bounds of the explicit burst-threshold override (0 = auto).
pub const BURST_RANGE: (u8, u8) = (1, 15);
/// Inclusive bounds of the page fraction, in thousandths (`frac=0.5` ⇔ 500).
pub const FRAC_MILLI_RANGE: (u16, u16) = (1, 1000);
/// Inclusive bounds of the cross-page extension.
pub const CROSS_RANGE: (u32, u32) = (0, 8);

/// One sentence naming every key and its range, used verbatim in every
/// parse error so a bad spelling teaches the full grammar.
pub const KEYS_HELP: &str = "n=1..1024, dedupe=on|off, burst=auto|1..15, \
     frac=(0,1] with at most 3 decimals, backward=on|off, cross=0..8";

/// The full SPB parameter vector.
///
/// `Default` is the paper's shipped configuration (N=48, dedupe on,
/// auto threshold, full-page bursts, forward only, no page crossing);
/// a default-valued `SpbParams` behaves bit-identically to the classic
/// `spb` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpbParams {
    /// Detector window: the saturating counter is checked every `n`
    /// committed stores (paper default 48).
    pub n: u32,
    /// Suppress duplicate bursts to the same page (the 52-bit dedupe
    /// register of §IV-B).
    pub dedupe: bool,
    /// Explicit saturating-counter threshold a window check must reach
    /// to fire a burst; `0` means the paper's automatic
    /// `max(n/8, 1)` rule.
    pub burst: u8,
    /// Fraction of the remaining page a burst requests, in thousandths
    /// (1000 = the paper's full-page burst; 500 = the nearest half).
    pub frac_milli: u16,
    /// Detect descending runs and burst toward the page start (§IV-A).
    pub backward: bool,
    /// Extend forward bursts this many pages past the page boundary
    /// (footnote 2; virtual-address prefetching only).
    pub cross: u32,
}

impl Default for SpbParams {
    fn default() -> Self {
        Self {
            n: 48,
            dedupe: true,
            burst: 0,
            frac_milli: 1000,
            backward: false,
            cross: 0,
        }
    }
}

impl SpbParams {
    /// The paper's shipped configuration.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A base-detector point: window `n` plus the dedupe switch, every
    /// extended knob at its default.
    pub fn base(n: u32, dedupe: bool) -> Self {
        Self {
            n,
            dedupe,
            ..Self::default()
        }
    }

    /// Whether only base-detector knobs (`n`, `dedupe`) differ from the
    /// defaults. Base-only points build the classic `SpbPolicy` (and
    /// keep its exact behaviour, labels, and cache keys); anything else
    /// builds the extended detector.
    pub fn is_base_only(&self) -> bool {
        self.burst == 0 && self.frac_milli == 1000 && !self.backward && self.cross == 0
    }

    /// The base-detector projection.
    pub fn base_config(&self) -> SpbConfig {
        SpbConfig {
            n: self.n,
            dedupe: self.dedupe,
        }
    }

    /// The extended-detector configuration these parameters describe.
    pub fn ext_config(&self) -> ExtSpbConfig {
        ExtSpbConfig {
            base: self.base_config(),
            backward: self.backward,
            cross_pages: self.cross,
            burst_threshold: self.burst,
            frac_milli: self.frac_milli,
        }
    }

    /// Validates every field against its documented range.
    pub fn validate(&self) -> Result<(), String> {
        check_range("n", u64::from(self.n), u64::from(N_RANGE.0), u64::from(N_RANGE.1))?;
        if self.burst != 0 {
            check_range(
                "burst",
                u64::from(self.burst),
                u64::from(BURST_RANGE.0),
                u64::from(BURST_RANGE.1),
            )?;
        }
        check_range(
            "frac",
            u64::from(self.frac_milli),
            u64::from(FRAC_MILLI_RANGE.0),
            u64::from(FRAC_MILLI_RANGE.1),
        )?;
        check_range(
            "cross",
            u64::from(self.cross),
            u64::from(CROSS_RANGE.0),
            u64::from(CROSS_RANGE.1),
        )?;
        Ok(())
    }

    /// Parses the `key=value` list after `spb:` — e.g.
    /// `n=32,dedupe=off,burst=3,frac=0.5`. Unlisted keys keep their
    /// paper defaults; every error names the full grammar.
    pub fn parse_args(args: &str) -> Result<Self, String> {
        let mut p = Self::default();
        for item in args.split(',') {
            let item = item.trim();
            if item.is_empty() {
                return Err(format!("empty parameter in {args:?} (valid keys: {KEYS_HELP})"));
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {item:?} (valid keys: {KEYS_HELP})"))?;
            match key {
                "n" => p.n = parse_int("n", value, u64::from(N_RANGE.0), u64::from(N_RANGE.1))? as u32,
                "dedupe" => p.dedupe = parse_switch("dedupe", value)?,
                "burst" => {
                    p.burst = if value == "auto" {
                        0
                    } else {
                        parse_int("burst", value, u64::from(BURST_RANGE.0), u64::from(BURST_RANGE.1))? as u8
                    }
                }
                "frac" => p.frac_milli = parse_frac(value)?,
                "backward" => p.backward = parse_switch("backward", value)?,
                "cross" => {
                    p.cross = parse_int("cross", value, u64::from(CROSS_RANGE.0), u64::from(CROSS_RANGE.1))? as u32
                }
                other => {
                    return Err(format!("unknown spb key {other:?} (valid keys: {KEYS_HELP})"));
                }
            }
        }
        Ok(p)
    }

    /// The canonical `key=value` suffix: only non-default keys, in the
    /// fixed order `n, dedupe, burst, frac, backward, cross`. `None`
    /// when every knob is at its default (the bare `spb` spelling).
    pub fn label_suffix(&self) -> Option<String> {
        let d = Self::default();
        let mut parts = Vec::new();
        if self.n != d.n {
            parts.push(format!("n={}", self.n));
        }
        if self.dedupe != d.dedupe {
            parts.push(format!("dedupe={}", switch_label(self.dedupe)));
        }
        if self.burst != d.burst {
            parts.push(format!("burst={}", self.burst));
        }
        if self.frac_milli != d.frac_milli {
            parts.push(format!("frac={}", frac_label(self.frac_milli)));
        }
        if self.backward != d.backward {
            parts.push(format!("backward={}", switch_label(self.backward)));
        }
        if self.cross != d.cross {
            parts.push(format!("cross={}", self.cross));
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(","))
        }
    }
}

fn check_range(key: &str, v: u64, lo: u64, hi: u64) -> Result<(), String> {
    if v < lo || v > hi {
        return Err(format!("{key}={v} out of range {lo}..{hi} (valid keys: {KEYS_HELP})"));
    }
    Ok(())
}

fn parse_int(key: &str, value: &str, lo: u64, hi: u64) -> Result<u64, String> {
    let v: u64 = value
        .parse()
        .map_err(|_| format!("{key}={value:?} is not an integer (valid keys: {KEYS_HELP})"))?;
    check_range(key, v, lo, hi)?;
    Ok(v)
}

fn parse_switch(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(format!("{key}={other:?} must be on or off (valid keys: {KEYS_HELP})")),
    }
}

fn switch_label(v: bool) -> &'static str {
    if v {
        "on"
    } else {
        "off"
    }
}

/// Parses a page fraction in `(0, 1]` with at most 3 decimal places
/// into thousandths (`0.5` → 500, `1` → 1000).
pub fn parse_frac(value: &str) -> Result<u16, String> {
    let err = |why: &str| format!("frac={value:?} {why} (valid keys: {KEYS_HELP})");
    let f: f64 = value.parse().map_err(|_| err("is not a number"))?;
    if !(f > 0.0 && f <= 1.0) {
        return Err(err("must be in (0, 1]"));
    }
    let milli = (f * 1000.0).round();
    if (f * 1000.0 - milli).abs() > 1e-9 {
        return Err(err("has more than 3 decimal places"));
    }
    Ok(milli as u16)
}

/// Renders thousandths back to the decimal spelling (`500` → "0.5",
/// `1000` → "1"); the exact inverse of [`parse_frac`].
pub fn frac_label(frac_milli: u16) -> String {
    if frac_milli == 1000 {
        return "1".to_string();
    }
    let mut s = format!("{:.3}", f64::from(frac_milli) / 1000.0);
    while s.ends_with('0') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_point_and_base_only() {
        let p = SpbParams::default();
        assert_eq!(p.n, 48);
        assert!(p.dedupe);
        assert!(p.is_base_only());
        assert_eq!(p.label_suffix(), None);
        assert_eq!(p.ext_config(), ExtSpbConfig::default());
    }

    #[test]
    fn parse_args_round_trips_the_issue_example() {
        let p = SpbParams::parse_args("n=32,dedupe=off,burst=3,frac=0.5").unwrap();
        assert_eq!(p.n, 32);
        assert!(!p.dedupe);
        assert_eq!(p.burst, 3);
        assert_eq!(p.frac_milli, 500);
        assert_eq!(
            p.label_suffix().as_deref(),
            Some("n=32,dedupe=off,burst=3,frac=0.5")
        );
        assert_eq!(SpbParams::parse_args(&p.label_suffix().unwrap()).unwrap(), p);
    }

    #[test]
    fn frac_spellings_round_trip() {
        for (text, milli) in [("1", 1000), ("0.5", 500), ("0.25", 250), ("0.125", 125), ("0.001", 1)] {
            assert_eq!(parse_frac(text).unwrap(), milli, "{text}");
            assert_eq!(parse_frac(&frac_label(milli)).unwrap(), milli, "{milli}");
        }
        assert_eq!(frac_label(500), "0.5");
        assert!(parse_frac("0").is_err());
        assert!(parse_frac("1.5").is_err());
        assert!(parse_frac("0.1234").unwrap_err().contains("3 decimal"));
    }

    #[test]
    fn errors_name_every_key_and_range() {
        for bad in ["n=0", "n=2000", "dedupe=maybe", "burst=16", "frac=2", "cross=9", "zig=1", "n"] {
            let e = SpbParams::parse_args(bad).unwrap_err();
            assert!(e.contains(KEYS_HELP), "error for {bad:?} must teach the grammar: {e}");
        }
    }

    #[test]
    fn burst_auto_spelling_means_zero() {
        assert_eq!(SpbParams::parse_args("burst=auto").unwrap().burst, 0);
        assert_eq!(SpbParams::parse_args("burst=auto").unwrap(), SpbParams::default());
    }

    #[test]
    fn non_base_knobs_disable_base_only() {
        assert!(!SpbParams::parse_args("burst=3").unwrap().is_base_only());
        assert!(!SpbParams::parse_args("frac=0.5").unwrap().is_base_only());
        assert!(!SpbParams::parse_args("backward=on").unwrap().is_base_only());
        assert!(!SpbParams::parse_args("cross=1").unwrap().is_base_only());
        assert!(SpbParams::parse_args("n=8,dedupe=off").unwrap().is_base_only());
    }

    #[test]
    fn ext_config_carries_every_knob() {
        let p = SpbParams::parse_args("n=16,dedupe=off,burst=5,frac=0.25,backward=on,cross=2").unwrap();
        let ext = p.ext_config();
        assert_eq!(ext.base, SpbConfig { n: 16, dedupe: false });
        assert_eq!(ext.burst_threshold, 5);
        assert_eq!(ext.frac_milli, 250);
        assert!(ext.backward);
        assert_eq!(ext.cross_pages, 2);
    }
}

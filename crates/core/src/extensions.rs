//! Detector extensions the paper discusses but does not evaluate.
//!
//! Two knobs the paper explicitly leaves on the table:
//!
//! - **Backward bursts** (§IV-A): "It is relatively simple for SPB to
//!   prefetch backward store bursts (e.g., to prefetch data from the
//!   stack). However, we found no evidence that backward store bursts
//!   cause SB stalls, so this extension is not considered." Implemented
//!   here behind [`ExtSpbConfig::backward`]; the `ablations` experiment
//!   confirms the paper's judgement on this suite.
//! - **Cross-page bursts** (footnote 2): "We did not explore
//!   prefetching beyond page boundaries despite our prefetcher can work
//!   with virtual addresses". Implemented behind
//!   [`ExtSpbConfig::cross_pages`]; note the caveat the paper raises —
//!   consecutive virtual pages need not map to consecutive physical
//!   pages, so a physical-address implementation could not do this.
//!
//! The extended detector costs one extra direction bit on top of the
//! base registers (and the base's optional dedupe register).

use crate::detector::{Burst, SpbConfig};

const BLOCK_BYTES: u64 = 64;
const BLOCKS_PER_PAGE: u64 = 64;
const SAT_MAX: u8 = 15;

/// Configuration of the extended detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtSpbConfig {
    /// The base detector parameters.
    pub base: SpbConfig,
    /// Detect descending block patterns and burst toward the start of
    /// the page (stack-like writes).
    pub backward: bool,
    /// Extend forward bursts this many pages past the current page
    /// boundary (0 = paper behaviour). Only sound for virtually-indexed
    /// prefetching.
    pub cross_pages: u32,
    /// Explicit saturating-counter threshold (1..=15); 0 keeps the
    /// paper's automatic `max(n/8, 1)` rule.
    pub burst_threshold: u8,
    /// Fraction of the remaining page a burst requests, in thousandths
    /// (1000 = paper behaviour: the whole remaining page). Bursts keep
    /// the blocks nearest the triggering store.
    pub frac_milli: u16,
}

impl Default for ExtSpbConfig {
    fn default() -> Self {
        Self {
            base: SpbConfig::default(),
            backward: false,
            cross_pages: 0,
            burst_threshold: 0,
            frac_milli: 1000,
        }
    }
}

/// The direction of the run the saturating counter is tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Backward,
}

/// A burst request with an issue order (backward bursts want the blocks
/// nearest the current store first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectedBurst {
    /// Half-open block range `[start, end)` to request ownership for.
    pub range: Burst,
    /// Whether to issue from `end-1` down to `start` (backward bursts).
    pub descending: bool,
}

impl DirectedBurst {
    /// Blocks in issue order.
    pub fn blocks(&self) -> Vec<u64> {
        if self.descending {
            (self.range.start..self.range.end).rev().collect()
        } else {
            self.range.blocks().collect()
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> u64 {
        self.range.len()
    }

    /// Whether the burst is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// The extended SPB detector: base algorithm plus direction tracking
/// and optional page-boundary crossing.
///
/// # Examples
///
/// ```
/// use spb_core::extensions::{ExtSpbConfig, ExtendedSpbDetector};
/// use spb_core::SpbConfig;
///
/// let mut d = ExtendedSpbDetector::new(ExtSpbConfig {
///     base: SpbConfig { n: 8, dedupe: false },
///     backward: true,
///     ..ExtSpbConfig::default()
/// });
/// // A descending stack-like store run…
/// let top = 0x8000u64;
/// let mut burst = None;
/// for i in 0..512u64 {
///     if let Some(b) = d.observe_store(top - i * 8) {
///         burst = Some(b);
///         break;
///     }
/// }
/// let b = burst.expect("backward pattern detected");
/// assert!(b.descending);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedSpbDetector {
    config: ExtSpbConfig,
    last_block: u64,
    sat: u8,
    dir: Direction,
    count: u32,
    last_burst_page: Option<u64>,
    triggers_forward: u64,
    triggers_backward: u64,
    checks: u64,
}

impl ExtendedSpbDetector {
    /// Creates the extended detector.
    ///
    /// # Panics
    ///
    /// Panics if the base window is zero.
    pub fn new(config: ExtSpbConfig) -> Self {
        assert!(config.base.n > 0, "the check window must be positive");
        Self {
            config,
            last_block: 0,
            sat: 0,
            dir: Direction::Forward,
            count: 0,
            last_burst_page: None,
            triggers_forward: 0,
            triggers_backward: 0,
            checks: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> ExtSpbConfig {
        self.config
    }

    /// Forward bursts emitted.
    pub fn triggers_forward(&self) -> u64 {
        self.triggers_forward
    }

    /// Backward bursts emitted.
    pub fn triggers_backward(&self) -> u64 {
        self.triggers_backward
    }

    /// Window checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The effective threshold: an explicit [`ExtSpbConfig::burst_threshold`]
    /// override, or the base detector's `max(n/8, 1)` rule.
    pub fn threshold(&self) -> u8 {
        if self.config.burst_threshold > 0 {
            self.config.burst_threshold.min(SAT_MAX)
        } else {
            ((self.config.base.n / 8).max(1) as u8).min(SAT_MAX)
        }
    }

    /// Storage bits: base cost plus the direction bit. Non-default
    /// knobs cost extra configuration registers (4 bits for an explicit
    /// threshold, 10 for a partial-page fraction).
    pub fn storage_bits(&self) -> u32 {
        let count_bits = 32 - self.config.base.n.leading_zeros();
        58 + 4
            + count_bits
            + if self.config.base.dedupe { 52 } else { 0 }
            + if self.config.backward { 1 } else { 0 }
            + if self.config.burst_threshold > 0 { 4 } else { 0 }
            + if self.config.frac_milli != 1000 { 10 } else { 0 }
    }

    /// Observes a committed store; returns a burst when a run is
    /// detected at a window check.
    pub fn observe_store(&mut self, addr: u64) -> Option<DirectedBurst> {
        let block = addr / BLOCK_BYTES;
        let delta = block.wrapping_sub(self.last_block);
        if delta == 1 {
            if self.dir == Direction::Forward {
                self.sat = (self.sat + 1).min(SAT_MAX);
            } else {
                self.dir = Direction::Forward;
                self.sat = 1;
            }
        } else if delta == u64::MAX && self.config.backward {
            // delta == -1: a descending run.
            if self.dir == Direction::Backward {
                self.sat = (self.sat + 1).min(SAT_MAX);
            } else {
                self.dir = Direction::Backward;
                self.sat = 1;
            }
        } else if delta != 0 {
            self.sat = 0;
        }
        self.last_block = block;

        if self.count == self.config.base.n {
            self.checks += 1;
            let fired = self.sat >= self.threshold();
            let dir = self.dir;
            self.sat = 0;
            self.count = 0;
            if fired {
                return self.make_burst(block, dir);
            }
        } else {
            self.count += 1;
        }
        None
    }

    fn make_burst(&mut self, block: u64, dir: Direction) -> Option<DirectedBurst> {
        let page = block / BLOCKS_PER_PAGE;
        if self.config.base.dedupe && self.last_burst_page == Some(page) {
            return None;
        }
        // Partial-page bursts keep the `frac_milli`/1000 of the range
        // nearest the triggering store (ceiling, so any non-empty range
        // keeps at least one block). At the default 1000 this is exact.
        let keep = |len: u64| (len * u64::from(self.config.frac_milli)).div_ceil(1000);
        let burst = match dir {
            Direction::Forward => {
                let end = (page + 1 + u64::from(self.config.cross_pages)) * BLOCKS_PER_PAGE;
                let start = block + 1;
                (start < end).then_some(DirectedBurst {
                    range: Burst {
                        start,
                        end: start + keep(end - start),
                    },
                    descending: false,
                })
            }
            Direction::Backward => {
                let start = page * BLOCKS_PER_PAGE;
                let end = block; // [page start, current block)
                (start < end).then_some(DirectedBurst {
                    range: Burst {
                        start: end - keep(end - start),
                        end,
                    },
                    descending: true,
                })
            }
        }?;
        self.last_burst_page = Some(page);
        match dir {
            Direction::Forward => self.triggers_forward += 1,
            Direction::Backward => self.triggers_backward += 1,
        }
        Some(burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u32, backward: bool, cross: u32) -> ExtSpbConfig {
        ExtSpbConfig {
            base: SpbConfig { n, dedupe: false },
            backward,
            cross_pages: cross,
            ..ExtSpbConfig::default()
        }
    }

    #[test]
    fn forward_behaviour_matches_base_detector() {
        use crate::detector::SpbDetector;
        let mut base = SpbDetector::new(SpbConfig {
            n: 8,
            dedupe: false,
        });
        let mut ext = ExtendedSpbDetector::new(cfg(8, false, 0));
        for i in 0..4096u64 {
            let a = base.observe_store(i * 8);
            let b = ext.observe_store(i * 8);
            assert_eq!(a, b.map(|d| d.range), "divergence at store {i}");
        }
        assert_eq!(base.triggers(), ext.triggers_forward());
    }

    #[test]
    fn backward_run_triggers_descending_burst() {
        let mut d = ExtendedSpbDetector::new(cfg(8, true, 0));
        let top = 0x10_0000u64 + 4096 - 8; // last qword of a page
        let mut bursts = Vec::new();
        for i in 0..512u64 {
            if let Some(b) = d.observe_store(top - i * 8) {
                bursts.push(b);
            }
        }
        assert!(!bursts.is_empty());
        let b = &bursts[0];
        assert!(b.descending);
        // Issue order goes from high blocks toward the page start.
        let blocks = b.blocks();
        assert!(blocks.windows(2).all(|w| w[1] == w[0] - 1));
        // And never leaves the page.
        let page = blocks[0] / 64;
        assert!(blocks.iter().all(|blk| blk / 64 == page));
    }

    #[test]
    fn backward_disabled_never_triggers_on_descending_runs() {
        let mut d = ExtendedSpbDetector::new(cfg(8, false, 0));
        let top = 0x10_0000u64 + 4096 - 8;
        for i in 0..512u64 {
            assert!(d.observe_store(top - i * 8).is_none());
        }
        assert_eq!(d.triggers_backward(), 0);
    }

    #[test]
    fn direction_flip_resets_the_run() {
        let mut d = ExtendedSpbDetector::new(cfg(48, true, 0));
        // Alternate up/down across blocks: each flip restarts at sat=1,
        // which never reaches the threshold of 6.
        let mut block = 1000u64;
        for i in 0..5_000u64 {
            block = if i % 2 == 0 { block + 1 } else { block - 1 };
            assert!(d.observe_store(block * 64).is_none());
        }
    }

    #[test]
    fn cross_page_extends_the_forward_burst() {
        let mut plain = ExtendedSpbDetector::new(cfg(8, false, 0));
        let mut crossing = ExtendedSpbDetector::new(cfg(8, false, 2));
        let mut plain_burst = None;
        let mut crossing_burst = None;
        for i in 0..512u64 {
            if let Some(b) = plain.observe_store(i * 8) {
                plain_burst.get_or_insert(b);
            }
            if let Some(b) = crossing.observe_store(i * 8) {
                crossing_burst.get_or_insert(b);
            }
        }
        let p = plain_burst.unwrap();
        let c = crossing_burst.unwrap();
        assert_eq!(p.range.start, c.range.start);
        assert_eq!(c.range.end - p.range.end, 2 * 64, "two extra pages");
    }

    #[test]
    fn storage_accounting_includes_direction_bit() {
        let without = ExtendedSpbDetector::new(cfg(31, false, 0));
        let with = ExtendedSpbDetector::new(cfg(31, true, 0));
        assert_eq!(without.storage_bits(), 67);
        assert_eq!(with.storage_bits(), 68);
    }

    #[test]
    fn explicit_threshold_overrides_the_auto_rule() {
        let auto = ExtendedSpbDetector::new(cfg(48, false, 0));
        assert_eq!(auto.threshold(), 6, "48/8 auto rule");
        let forced = ExtendedSpbDetector::new(ExtSpbConfig {
            burst_threshold: 3,
            ..cfg(48, false, 0)
        });
        assert_eq!(forced.threshold(), 3);
        // A run that covers only ~4 consecutive blocks per window fires
        // at threshold 3 but not at the auto threshold of 6.
        let run = |mut d: ExtendedSpbDetector| {
            let mut triggers = 0u64;
            for i in 0..4096u64 {
                // 4 consecutive blocks, then a jump: sat peaks at 4.
                let block = (i / 4) * 1000 + (i % 4);
                if d.observe_store(block * 64).is_some() {
                    triggers += 1;
                }
            }
            triggers
        };
        assert_eq!(run(ExtendedSpbDetector::new(cfg(48, false, 0))), 0);
        assert!(
            run(ExtendedSpbDetector::new(ExtSpbConfig {
                burst_threshold: 3,
                ..cfg(48, false, 0)
            })) > 0
        );
    }

    #[test]
    fn frac_truncates_forward_bursts_keeping_nearest_blocks() {
        let full = ExtendedSpbDetector::new(cfg(8, false, 0));
        let half = ExtendedSpbDetector::new(ExtSpbConfig {
            frac_milli: 500,
            ..cfg(8, false, 0)
        });
        let first_burst = |mut d: ExtendedSpbDetector| {
            (0..512u64).find_map(|i| d.observe_store(i * 8))
        };
        let f = first_burst(full).unwrap();
        let h = first_burst(half).unwrap();
        assert_eq!(f.range.start, h.range.start, "nearest blocks kept");
        assert_eq!(h.len(), f.len().div_ceil(2), "half the range, rounded up");
    }

    #[test]
    fn frac_default_is_bit_identical_to_full_page() {
        let mut a = ExtendedSpbDetector::new(cfg(8, true, 1));
        let mut b = ExtendedSpbDetector::new(ExtSpbConfig {
            frac_milli: 1000,
            ..cfg(8, true, 1)
        });
        for i in 0..4096u64 {
            let addr = if i % 512 < 256 { i * 8 } else { (1 << 30) - i * 8 };
            assert_eq!(a.observe_store(addr), b.observe_store(addr), "store {i}");
        }
    }

    #[test]
    fn frac_never_empties_a_nonempty_burst() {
        let mut d = ExtendedSpbDetector::new(ExtSpbConfig {
            frac_milli: 1,
            ..cfg(8, false, 0)
        });
        for i in 0..4096u64 {
            if let Some(b) = d.observe_store(i * 8) {
                assert!(!b.is_empty());
            }
        }
    }

    #[test]
    fn backward_burst_at_page_start_is_empty_and_suppressed() {
        let mut d = ExtendedSpbDetector::new(cfg(8, true, 0));
        // Descend and land the check exactly at the page's first block:
        // the remaining range is empty; the detector must return None
        // rather than an empty burst.
        for i in 0..20_000u64 {
            if let Some(b) = d.observe_store(0x100_0000 - i * 8) {
                assert!(!b.is_empty());
            }
        }
    }
}

//! Store-Prefetch Bursts — the paper's contribution.
//!
//! SPB (Cebrián, Kaxiras, Ros — MICRO 2020) is a tiny store-side
//! prefetcher that sits next to the commit stage:
//!
//! 1. [`detector::SpbDetector`] watches committed stores with just three
//!    registers (67 bits for the paper's parameters): the last committed
//!    store's *block* address (58 bits), a 4-bit saturating counter of
//!    consecutive-block transitions, and a store counter checked every
//!    `N` stores.
//! 2. When the window of `N` stores covered at least `N/8` consecutive
//!    blocks (8-byte stores fill a 64-byte block in 8 stores), SPB
//!    predicts the burst continues across the whole page and asks the
//!    L1 controller for write permission on **every remaining block of
//!    the current page** in one shot ([`spb_mem::MemorySystem::enqueue_burst`]).
//! 3. [`policy::SpbPolicy`] packages this on top of the at-commit
//!    baseline as a drop-in [`spb_cpu::StorePrefetchPolicy`].
//!
//! The §IV-C variant that adapts the threshold to the observed store
//! *size* (and performs slightly worse, per the paper) is provided as
//! [`detector::SpbDynamicDetector`] / [`policy::SpbDynamicPolicy`].
//!
//! # Examples
//!
//! ```
//! use spb_core::detector::{SpbConfig, SpbDetector};
//!
//! let mut spb = SpbDetector::new(SpbConfig { n: 8, ..Default::default() });
//! // Eight 8-byte stores filling block 0, then one touching block 1:
//! // the Figure 4 running example.
//! for i in 0..8u64 {
//!     assert_eq!(spb.observe_store(i * 8), None);
//! }
//! let burst = spb.observe_store(0x40).expect("pattern detected");
//! assert_eq!(burst.start, 2); // blocks after 0x40's block…
//! assert_eq!(burst.end, 64);  // …to the end of the page
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod extensions;
pub mod params;
pub mod policy;

pub use detector::{SpbConfig, SpbDetector, BLOCKS_PER_PAGE, BLOCK_BYTES, PAGE_BYTES};
pub use params::SpbParams;
pub use policy::SpbPolicy;

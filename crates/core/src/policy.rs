//! SPB as a drop-in store-prefetch policy.

use crate::detector::{SpbConfig, SpbDetector, SpbDynamicDetector};
use spb_cpu::StorePrefetchPolicy;
use spb_mem::{MemorySystem, RfoOrigin};

/// The full SPB policy: at-commit RFOs for every store (the hardware
/// baseline keeps running underneath, as in the paper's Figure 4, where
/// per-store `WritePF` requests continue and are discarded when the
/// burst already owns the block) plus page bursts when the detector
/// fires.
///
/// # Examples
///
/// ```
/// use spb_core::{SpbConfig, SpbPolicy};
/// use spb_cpu::StorePrefetchPolicy;
/// use spb_mem::{MemoryConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut spb = SpbPolicy::new(SpbConfig { n: 8, ..Default::default() });
/// for i in 0..16u64 {
///     spb.on_store_commit(&mut mem, 0, 0x8000 + i * 8, 8, 0x400, i);
/// }
/// assert!(mem.burst_queue_len(0) > 0, "the burst reached the L1 controller");
/// ```
#[derive(Debug, Clone)]
pub struct SpbPolicy {
    detector: SpbDetector,
}

impl SpbPolicy {
    /// Creates the policy with the given detector configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            detector: SpbDetector::new(config),
        }
    }

    /// Creates the policy with the paper's preferred parameters (N=48).
    pub fn with_paper_defaults() -> Self {
        Self::new(SpbConfig::default())
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &SpbDetector {
        &self.detector
    }
}

impl Default for SpbPolicy {
    fn default() -> Self {
        Self::with_paper_defaults()
    }
}

impl StorePrefetchPolicy for SpbPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        // The default at-commit prefetch continues to be sent every
        // cycle (discarded as PopReq when the burst already brought the
        // block — Figure 4, T1..T7).
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr) {
            mem.enqueue_burst(core, burst.blocks(), now);
        }
    }

    fn name(&self) -> &'static str {
        "spb"
    }
}

/// The §IV-C dynamic-size variant (kept for the ablation; the paper
/// found it performs worse than plain SPB).
#[derive(Debug, Clone)]
pub struct SpbDynamicPolicy {
    detector: SpbDynamicDetector,
}

impl SpbDynamicPolicy {
    /// Creates the dynamic policy.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            detector: SpbDynamicDetector::new(config),
        }
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &SpbDynamicDetector {
        &self.detector
    }
}

impl Default for SpbDynamicPolicy {
    fn default() -> Self {
        Self::new(SpbConfig::default())
    }
}

impl StorePrefetchPolicy for SpbDynamicPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr, size) {
            mem.enqueue_burst(core, burst.blocks(), now);
        }
    }

    fn name(&self) -> &'static str {
        "spb-dynamic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_cpu::{config::CoreConfig, core::Core, policy::AtCommitPolicy};
    use spb_mem::MemoryConfig;
    use spb_trace::generators::MemsetGen;
    use spb_trace::CodeRegion;

    #[test]
    fn spb_enqueues_bursts_on_contiguous_commits() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::new(SpbConfig { n: 8, dedupe: true });
        for i in 0..64u64 {
            spb.on_store_commit(&mut mem, 0, i * 8, 8, 0x400, i);
        }
        assert!(spb.detector().triggers() >= 1);
        assert!(
            mem.stats().prefetch_requests[RfoOrigin::AtCommit.index()] == 64,
            "at-commit RFOs continue under SPB"
        );
    }

    #[test]
    fn spb_stays_silent_on_random_stores() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::with_paper_defaults();
        let mut x = 7u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            spb.on_store_commit(&mut mem, 0, (x % (1 << 28)) & !7, 8, 0x400, i);
        }
        assert_eq!(spb.detector().triggers(), 0);
        // No burst-origin traffic at all (the L1 queue may hold ordinary
        // at-commit RFOs waiting on MSHRs; that is not SPB activity).
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::SpbBurst.index()],
            0
        );
    }

    /// The headline mechanism end-to-end: on a DRAM-missing store burst
    /// with a small SB, SPB beats plain at-commit because its page
    /// bursts run far ahead of the SB window.
    #[test]
    fn spb_outruns_at_commit_on_store_bursts() {
        let run = |policy: Box<dyn StorePrefetchPolicy + Send>| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let trace = Box::new(MemsetGen::new(
                0x100_0000,
                512 * 1024,
                CodeRegion::Memset,
                3,
            ));
            let cfg = CoreConfig::skylake().with_sb_entries(14);
            let mut core = Core::new(0, cfg, trace, policy);
            core.run_until_committed(&mut mem, 50_000)
        };
        let cycles_commit = run(Box::<AtCommitPolicy>::default());
        let cycles_spb = run(Box::<SpbPolicy>::default());
        assert!(
            (cycles_spb as f64) < 0.8 * cycles_commit as f64,
            "SPB must clearly beat at-commit on a burst: {cycles_spb} vs {cycles_commit}"
        );
    }

    #[test]
    fn spb_success_rate_exceeds_at_commit_on_bursts() {
        let run = |policy: Box<dyn StorePrefetchPolicy + Send>, origin: RfoOrigin| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let trace = Box::new(MemsetGen::new(
                0x100_0000,
                512 * 1024,
                CodeRegion::Memset,
                3,
            ));
            let mut core = Core::new(0, CoreConfig::skylake(), trace, policy);
            let _ = core.run_until_committed(&mut mem, 50_000);
            mem.finalize_stats();
            let s = mem.stats();
            let i = origin.index();
            (s.prefetch_successful[i], s.prefetch_late[i])
        };
        let (ok_commit, late_commit) = run(Box::<AtCommitPolicy>::default(), RfoOrigin::AtCommit);
        let (ok_spb, late_spb) = run(Box::<SpbPolicy>::default(), RfoOrigin::SpbBurst);
        // At-commit: mostly late prefetches (issued at the end of the
        // store's life). SPB: mostly successful (issued a page ahead).
        assert!(
            late_commit > ok_commit,
            "at-commit is dominated by late prefetches"
        );
        assert!(ok_spb > late_spb, "SPB bursts arrive in time");
    }

    #[test]
    fn dynamic_policy_works_end_to_end() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = SpbDynamicPolicy::new(SpbConfig {
            n: 16,
            dedupe: true,
        });
        for i in 0..256u64 {
            p.on_store_commit(&mut mem, 0, 0x20_0000 + i * 8, 8, 0x400, i);
        }
        assert!(p.detector().triggers() >= 1);
    }

    #[test]
    fn policy_names() {
        assert_eq!(SpbPolicy::with_paper_defaults().name(), "spb");
        assert_eq!(SpbDynamicPolicy::default().name(), "spb-dynamic");
    }
}

/// SPB with the §IV-A/footnote-2 extensions (backward bursts and
/// cross-page bursts) enabled per [`crate::extensions::ExtSpbConfig`].
///
/// The paper deliberately ships without these; this policy exists so
/// the `ablations` experiment can verify that judgement on this suite.
#[derive(Debug, Clone)]
pub struct ExtendedSpbPolicy {
    detector: crate::extensions::ExtendedSpbDetector,
}

impl ExtendedSpbPolicy {
    /// Creates the extended policy.
    ///
    /// # Panics
    ///
    /// Panics if the base window is zero.
    pub fn new(config: crate::extensions::ExtSpbConfig) -> Self {
        Self {
            detector: crate::extensions::ExtendedSpbDetector::new(config),
        }
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &crate::extensions::ExtendedSpbDetector {
        &self.detector
    }
}

impl StorePrefetchPolicy for ExtendedSpbPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr) {
            mem.enqueue_burst(core, burst.blocks(), now);
        }
    }

    fn name(&self) -> &'static str {
        "spb-extended"
    }
}

/// Feedback-directed SPB (Srinath-style FDP applied to bursts): the
/// base detector decides *when* to burst, and measured burst-prefetch
/// accuracy decides *how much* of the remaining page to request.
///
/// Mirrors the `spb_mem::prefetch` FDP ladder: every
/// [`FEEDBACK_WINDOW`] burst blocks issued, accuracy ≥ 75% steps the
/// page fraction up one level and accuracy ≤ 40% steps it down, over
/// the ladder ¼ → ½ → ¾ → full page. Fully deterministic: the feedback
/// signal is the simulator's own `RfoOrigin::SpbBurst` counters.
#[derive(Debug, Clone)]
pub struct FeedbackSpbPolicy {
    detector: SpbDetector,
    level: usize,
    last_issued: u64,
    last_useful: u64,
}

/// The page-fraction ladder, in thousandths of the remaining page.
pub const FEEDBACK_FRAC_LEVELS: [u64; 4] = [250, 500, 750, 1000];
/// Burst blocks issued between feedback evaluations.
pub const FEEDBACK_WINDOW: u64 = 256;

impl FeedbackSpbPolicy {
    /// Creates the feedback policy, starting mid-ladder (half page).
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            detector: SpbDetector::new(config),
            level: 1,
            last_issued: 0,
            last_useful: 0,
        }
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &SpbDetector {
        &self.detector
    }

    /// The current ladder position (0..=3).
    pub fn level(&self) -> usize {
        self.level
    }

    fn adapt(&mut self, mem: &MemorySystem) {
        let s = mem.stats();
        let i = RfoOrigin::SpbBurst.index();
        let issued = s.prefetch_requests[i];
        if issued - self.last_issued < FEEDBACK_WINDOW {
            return;
        }
        let useful = s.prefetch_successful[i];
        let d_issued = issued - self.last_issued;
        let d_useful = useful - self.last_useful;
        // FDP thresholds: ≥3/4 accurate → more aggressive, ≤2/5 → less.
        if d_useful * 4 >= d_issued * 3 {
            self.level = (self.level + 1).min(FEEDBACK_FRAC_LEVELS.len() - 1);
        } else if d_useful * 5 <= d_issued * 2 {
            self.level = self.level.saturating_sub(1);
        }
        self.last_issued = issued;
        self.last_useful = useful;
    }
}

impl StorePrefetchPolicy for FeedbackSpbPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr) {
            self.adapt(mem);
            let frac = FEEDBACK_FRAC_LEVELS[self.level];
            let keep = (burst.len() * frac).div_ceil(1000).max(1);
            mem.enqueue_burst(core, burst.start..burst.start + keep, now);
        }
    }

    fn name(&self) -> &'static str {
        "spb-feedback"
    }
}

//! SPB as a drop-in store-prefetch policy.

use crate::detector::{SpbConfig, SpbDetector, SpbDynamicDetector};
use spb_cpu::StorePrefetchPolicy;
use spb_mem::{MemorySystem, RfoOrigin};

/// Wrong-path companion to the commit-fed SPB detector.
///
/// The paper's SPB observes *committed* stores, so squashed work never
/// reaches it. The squash-storm scenarios ask the opposite question:
/// what does SPB waste if its window closes over a wrong-path store run
/// (a detector fed at execute, or deep ret2spec-style speculation where
/// a whole burst executes before the misprediction resolves)? This
/// mini-detector mirrors the main one's trigger rule — a contiguous
/// same-page ±1-block run reaching the window `n` — but issues its page
/// burst through [`MemorySystem::enqueue_burst_spec`], so every block it
/// acquires is tagged and charged at squash time. It keeps no state
/// across paths: [`WrongPathWindow::reset`] runs at every squash.
#[derive(Debug, Clone, Copy)]
struct WrongPathWindow {
    n: u64,
    last_block: u64,
    run: u64,
    descending: bool,
    fired_page: u64,
}

impl WrongPathWindow {
    fn new(n: u32) -> Self {
        Self {
            n: u64::from(n.max(1)),
            last_block: u64::MAX - 1,
            run: 0,
            descending: false,
            fired_page: u64::MAX,
        }
    }

    /// Observes one wrong-path store; returns the block range to burst
    /// when the window closes over a contiguous run on a new page.
    fn observe(&mut self, addr: u64) -> Option<std::ops::Range<u64>> {
        let block = addr / 64;
        let asc = block == self.last_block.wrapping_add(1);
        let desc = block == self.last_block.wrapping_sub(1);
        if asc || desc {
            self.run += 1;
            self.descending = desc;
        } else {
            self.run = 1;
            self.descending = false;
        }
        self.last_block = block;
        let page = block / 64;
        if self.run >= self.n && page != self.fired_page {
            self.fired_page = page;
            let lo = page * 64;
            let hi = lo + 64;
            // Burst the untouched remainder of the page, in run order.
            return Some(if self.descending {
                lo..block
            } else {
                (block + 1).min(hi)..hi
            });
        }
        None
    }

    fn reset(&mut self) {
        self.run = 0;
        self.last_block = u64::MAX - 1;
        self.fired_page = u64::MAX;
    }
}

/// The full SPB policy: at-commit RFOs for every store (the hardware
/// baseline keeps running underneath, as in the paper's Figure 4, where
/// per-store `WritePF` requests continue and are discarded when the
/// burst already owns the block) plus page bursts when the detector
/// fires.
///
/// # Examples
///
/// ```
/// use spb_core::{SpbConfig, SpbPolicy};
/// use spb_cpu::StorePrefetchPolicy;
/// use spb_mem::{MemoryConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut spb = SpbPolicy::new(SpbConfig { n: 8, ..Default::default() });
/// for i in 0..16u64 {
///     spb.on_store_commit(&mut mem, 0, 0x8000 + i * 8, 8, 0x400, i);
/// }
/// assert!(mem.burst_queue_len(0) > 0, "the burst reached the L1 controller");
/// ```
#[derive(Debug, Clone)]
pub struct SpbPolicy {
    detector: SpbDetector,
    wrong_path: WrongPathWindow,
}

impl SpbPolicy {
    /// Creates the policy with the given detector configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            detector: SpbDetector::new(config),
            wrong_path: WrongPathWindow::new(config.n),
        }
    }

    /// Creates the policy with the paper's preferred parameters (N=48).
    pub fn with_paper_defaults() -> Self {
        Self::new(SpbConfig::default())
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &SpbDetector {
        &self.detector
    }
}

impl Default for SpbPolicy {
    fn default() -> Self {
        Self::with_paper_defaults()
    }
}

impl StorePrefetchPolicy for SpbPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        // The default at-commit prefetch continues to be sent every
        // cycle (discarded as PopReq when the burst already brought the
        // block — Figure 4, T1..T7).
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr) {
            mem.enqueue_burst(core, burst.blocks(), now);
        }
    }

    fn on_wrong_path_store(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        _pc: u64,
        now: u64,
    ) {
        if let Some(range) = self.wrong_path.observe(addr) {
            mem.enqueue_burst_spec(core, range, now);
        }
    }

    fn on_wrong_path_squash(&mut self, _mem: &mut MemorySystem, _core: usize, _now: u64) {
        self.wrong_path.reset();
    }

    fn name(&self) -> &'static str {
        "spb"
    }
}

/// The §IV-C dynamic-size variant (kept for the ablation; the paper
/// found it performs worse than plain SPB).
#[derive(Debug, Clone)]
pub struct SpbDynamicPolicy {
    detector: SpbDynamicDetector,
    wrong_path: WrongPathWindow,
}

impl SpbDynamicPolicy {
    /// Creates the dynamic policy.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            detector: SpbDynamicDetector::new(config),
            wrong_path: WrongPathWindow::new(config.n),
        }
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &SpbDynamicDetector {
        &self.detector
    }
}

impl Default for SpbDynamicPolicy {
    fn default() -> Self {
        Self::new(SpbConfig::default())
    }
}

impl StorePrefetchPolicy for SpbDynamicPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr, size) {
            mem.enqueue_burst(core, burst.blocks(), now);
        }
    }

    fn on_wrong_path_store(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        _pc: u64,
        now: u64,
    ) {
        if let Some(range) = self.wrong_path.observe(addr) {
            mem.enqueue_burst_spec(core, range, now);
        }
    }

    fn on_wrong_path_squash(&mut self, _mem: &mut MemorySystem, _core: usize, _now: u64) {
        self.wrong_path.reset();
    }

    fn name(&self) -> &'static str {
        "spb-dynamic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_cpu::{config::CoreConfig, core::Core, policy::AtCommitPolicy};
    use spb_mem::MemoryConfig;
    use spb_trace::generators::MemsetGen;
    use spb_trace::CodeRegion;

    #[test]
    fn spb_enqueues_bursts_on_contiguous_commits() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::new(SpbConfig { n: 8, dedupe: true });
        for i in 0..64u64 {
            spb.on_store_commit(&mut mem, 0, i * 8, 8, 0x400, i);
        }
        assert!(spb.detector().triggers() >= 1);
        assert!(
            mem.stats().prefetch_requests[RfoOrigin::AtCommit.index()] == 64,
            "at-commit RFOs continue under SPB"
        );
    }

    #[test]
    fn spb_stays_silent_on_random_stores() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::with_paper_defaults();
        let mut x = 7u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            spb.on_store_commit(&mut mem, 0, (x % (1 << 28)) & !7, 8, 0x400, i);
        }
        assert_eq!(spb.detector().triggers(), 0);
        // No burst-origin traffic at all (the L1 queue may hold ordinary
        // at-commit RFOs waiting on MSHRs; that is not SPB activity).
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::SpbBurst.index()],
            0
        );
    }

    /// The headline mechanism end-to-end: on a DRAM-missing store burst
    /// with a small SB, SPB beats plain at-commit because its page
    /// bursts run far ahead of the SB window.
    #[test]
    fn spb_outruns_at_commit_on_store_bursts() {
        let run = |policy: Box<dyn StorePrefetchPolicy + Send>| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let trace = Box::new(MemsetGen::new(
                0x100_0000,
                512 * 1024,
                CodeRegion::Memset,
                3,
            ));
            let cfg = CoreConfig::skylake().with_sb_entries(14);
            let mut core = Core::new(0, cfg, trace, policy);
            core.run_until_committed(&mut mem, 50_000)
        };
        let cycles_commit = run(Box::<AtCommitPolicy>::default());
        let cycles_spb = run(Box::<SpbPolicy>::default());
        assert!(
            (cycles_spb as f64) < 0.8 * cycles_commit as f64,
            "SPB must clearly beat at-commit on a burst: {cycles_spb} vs {cycles_commit}"
        );
    }

    #[test]
    fn spb_success_rate_exceeds_at_commit_on_bursts() {
        let run = |policy: Box<dyn StorePrefetchPolicy + Send>, origin: RfoOrigin| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let trace = Box::new(MemsetGen::new(
                0x100_0000,
                512 * 1024,
                CodeRegion::Memset,
                3,
            ));
            let mut core = Core::new(0, CoreConfig::skylake(), trace, policy);
            let _ = core.run_until_committed(&mut mem, 50_000);
            mem.finalize_stats();
            let s = mem.stats();
            let i = origin.index();
            (s.prefetch_successful[i], s.prefetch_late[i])
        };
        let (ok_commit, late_commit) = run(Box::<AtCommitPolicy>::default(), RfoOrigin::AtCommit);
        let (ok_spb, late_spb) = run(Box::<SpbPolicy>::default(), RfoOrigin::SpbBurst);
        // At-commit: mostly late prefetches (issued at the end of the
        // store's life). SPB: mostly successful (issued a page ahead).
        assert!(
            late_commit > ok_commit,
            "at-commit is dominated by late prefetches"
        );
        assert!(ok_spb > late_spb, "SPB bursts arrive in time");
    }

    #[test]
    fn dynamic_policy_works_end_to_end() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = SpbDynamicPolicy::new(SpbConfig {
            n: 16,
            dedupe: true,
        });
        for i in 0..256u64 {
            p.on_store_commit(&mut mem, 0, 0x20_0000 + i * 8, 8, 0x400, i);
        }
        assert!(p.detector().triggers() >= 1);
    }

    #[test]
    fn policy_names() {
        assert_eq!(SpbPolicy::with_paper_defaults().name(), "spb");
        assert_eq!(SpbDynamicPolicy::default().name(), "spb-dynamic");
    }

    #[test]
    fn wrong_path_run_reaching_window_fires_speculative_burst() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::new(SpbConfig { n: 8, dedupe: true });
        // A contiguous 16-block wrong-path run on one page: the window
        // (8) closes mid-run and the rest of the page goes out as a
        // speculative burst.
        for i in 0..16u64 {
            spb.on_wrong_path_store(&mut mem, 0, 0x40_0000 + i * 64, 8, 0xDEAD, i);
        }
        assert!(mem.burst_queue_len(0) > 0, "speculative burst enqueued");
        // Drain the queue, then squash: everything it bought is waste.
        let mut now = 16;
        while mem.burst_queue_len(0) > 0 {
            mem.tick(now);
            now += 1;
        }
        spb.on_wrong_path_squash(&mut mem, 0, now);
        mem.attribute_squash(0, now);
        assert!(mem.stats().spec_wasted_rfos > 0);
        assert!(mem.stats().spec_leaked_m_blocks > 0);
        assert_eq!(
            mem.stats().prefetch_requests[RfoOrigin::SpbBurst.index()] as usize,
            mem.stats().spec_rfos_issued as usize,
            "every burst RFO on the wrong path is a speculative one"
        );
    }

    #[test]
    fn wrong_path_runs_shorter_than_window_stay_silent() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::with_paper_defaults(); // n = 48
        for episode in 0..8u64 {
            for i in 0..16u64 {
                let addr = 0x80_0000 + episode * 4096 + i * 64;
                spb.on_wrong_path_store(&mut mem, 0, addr, 8, 0xDEAD, i);
            }
            spb.on_wrong_path_squash(&mut mem, 0, episode * 100);
            mem.attribute_squash(0, episode * 100);
        }
        assert_eq!(mem.burst_queue_len(0), 0);
        assert_eq!(mem.stats().spec_rfos_issued, 0);
        assert_eq!(mem.stats().spec_leaked_m_blocks, 0);
    }

    #[test]
    fn squash_resets_the_wrong_path_window_across_paths() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::new(SpbConfig { n: 8, dedupe: true });
        // Two runs of 5 on the same page, split by a squash: neither
        // reaches the window alone, and the reset forbids stitching.
        for i in 0..5u64 {
            spb.on_wrong_path_store(&mut mem, 0, 0xC0_0000 + i * 64, 8, 0xDEAD, i);
        }
        spb.on_wrong_path_squash(&mut mem, 0, 10);
        mem.attribute_squash(0, 10);
        for i in 5..10u64 {
            spb.on_wrong_path_store(&mut mem, 0, 0xC0_0000 + i * 64, 8, 0xDEAD, i);
        }
        assert_eq!(mem.burst_queue_len(0), 0, "reset must split the run");
    }

    #[test]
    fn descending_wrong_path_run_bursts_toward_page_start() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut spb = SpbPolicy::new(SpbConfig { n: 8, dedupe: true });
        // ret2spec-style descending run from the top of a page.
        for i in 0..8u64 {
            let addr = 0x100_0000 + 4096 - 64 - i * 64;
            spb.on_wrong_path_store(&mut mem, 0, addr, 8, 0xDEAD, i);
        }
        let queued = mem.burst_queue_len(0);
        assert!(queued > 0, "descending run must fire too");
        // The burst covers only blocks below the run's current position.
        let page_lo = 0x100_0000 / 64;
        let current = (0x100_0000 + 4096 - 64 * 8) / 64;
        assert_eq!(queued as u64, current - page_lo);
    }
}

/// SPB with the §IV-A/footnote-2 extensions (backward bursts and
/// cross-page bursts) enabled per [`crate::extensions::ExtSpbConfig`].
///
/// The paper deliberately ships without these; this policy exists so
/// the `ablations` experiment can verify that judgement on this suite.
#[derive(Debug, Clone)]
pub struct ExtendedSpbPolicy {
    detector: crate::extensions::ExtendedSpbDetector,
    wrong_path: WrongPathWindow,
}

impl ExtendedSpbPolicy {
    /// Creates the extended policy.
    ///
    /// # Panics
    ///
    /// Panics if the base window is zero.
    pub fn new(config: crate::extensions::ExtSpbConfig) -> Self {
        Self {
            detector: crate::extensions::ExtendedSpbDetector::new(config),
            wrong_path: WrongPathWindow::new(config.base.n),
        }
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &crate::extensions::ExtendedSpbDetector {
        &self.detector
    }
}

impl StorePrefetchPolicy for ExtendedSpbPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr) {
            mem.enqueue_burst(core, burst.blocks(), now);
        }
    }

    fn on_wrong_path_store(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        _pc: u64,
        now: u64,
    ) {
        if let Some(range) = self.wrong_path.observe(addr) {
            mem.enqueue_burst_spec(core, range, now);
        }
    }

    fn on_wrong_path_squash(&mut self, _mem: &mut MemorySystem, _core: usize, _now: u64) {
        self.wrong_path.reset();
    }

    fn name(&self) -> &'static str {
        "spb-extended"
    }
}

/// Feedback-directed SPB (Srinath-style FDP applied to bursts): the
/// base detector decides *when* to burst, and measured burst-prefetch
/// accuracy decides *how much* of the remaining page to request.
///
/// Mirrors the `spb_mem::prefetch` FDP ladder: every
/// [`FEEDBACK_WINDOW`] burst blocks issued, accuracy ≥ 75% steps the
/// page fraction up one level and accuracy ≤ 40% steps it down, over
/// the ladder ¼ → ½ → ¾ → full page. Fully deterministic: the feedback
/// signal is the simulator's own `RfoOrigin::SpbBurst` counters.
#[derive(Debug, Clone)]
pub struct FeedbackSpbPolicy {
    detector: SpbDetector,
    wrong_path: WrongPathWindow,
    level: usize,
    last_issued: u64,
    last_useful: u64,
}

/// The page-fraction ladder, in thousandths of the remaining page.
pub const FEEDBACK_FRAC_LEVELS: [u64; 4] = [250, 500, 750, 1000];
/// Burst blocks issued between feedback evaluations.
pub const FEEDBACK_WINDOW: u64 = 256;

impl FeedbackSpbPolicy {
    /// Creates the feedback policy, starting mid-ladder (half page).
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            detector: SpbDetector::new(config),
            wrong_path: WrongPathWindow::new(config.n),
            level: 1,
            last_issued: 0,
            last_useful: 0,
        }
    }

    /// The underlying detector (for instrumentation).
    pub fn detector(&self) -> &SpbDetector {
        &self.detector
    }

    /// The current ladder position (0..=3).
    pub fn level(&self) -> usize {
        self.level
    }

    fn adapt(&mut self, mem: &MemorySystem) {
        let s = mem.stats();
        let i = RfoOrigin::SpbBurst.index();
        let issued = s.prefetch_requests[i];
        if issued - self.last_issued < FEEDBACK_WINDOW {
            return;
        }
        let useful = s.prefetch_successful[i];
        let d_issued = issued - self.last_issued;
        let d_useful = useful - self.last_useful;
        // FDP thresholds: ≥3/4 accurate → more aggressive, ≤2/5 → less.
        if d_useful * 4 >= d_issued * 3 {
            self.level = (self.level + 1).min(FEEDBACK_FRAC_LEVELS.len() - 1);
        } else if d_useful * 5 <= d_issued * 2 {
            self.level = self.level.saturating_sub(1);
        }
        self.last_issued = issued;
        self.last_useful = useful;
    }
}

impl StorePrefetchPolicy for FeedbackSpbPolicy {
    fn on_store_commit(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        pc: u64,
        now: u64,
    ) {
        let _ = mem.store_prefetch(core, addr, pc, now, RfoOrigin::AtCommit);
        if let Some(burst) = self.detector.observe_store(addr) {
            self.adapt(mem);
            let frac = FEEDBACK_FRAC_LEVELS[self.level];
            let keep = (burst.len() * frac).div_ceil(1000).max(1);
            mem.enqueue_burst(core, burst.start..burst.start + keep, now);
        }
    }

    fn on_wrong_path_store(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        _size: u8,
        _pc: u64,
        now: u64,
    ) {
        if let Some(range) = self.wrong_path.observe(addr) {
            let len = range.end - range.start;
            if len == 0 {
                return;
            }
            // The ladder throttles speculative bursts exactly like
            // committed ones: same fraction of the remaining page.
            let frac = FEEDBACK_FRAC_LEVELS[self.level];
            let keep = (len * frac).div_ceil(1000).clamp(1, len);
            mem.enqueue_burst_spec(core, range.start..range.start + keep, now);
        }
    }

    fn on_wrong_path_squash(&mut self, _mem: &mut MemorySystem, _core: usize, _now: u64) {
        self.wrong_path.reset();
    }

    fn name(&self) -> &'static str {
        "spb-feedback"
    }
}

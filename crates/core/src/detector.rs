//! The SPB burst detector (§IV of the paper).

use std::fmt;

/// Cache-block size assumed by the detector, in bytes.
pub const BLOCK_BYTES: u64 = 64;
/// Blocks per page. Note this is *also* 64 — a coincidence of the 64 B
/// block / 4 KiB page geometry, not a shared constant: dividing a byte
/// address by [`BLOCK_BYTES`] yields a block, dividing a *block* by
/// `BLOCKS_PER_PAGE` yields a page.
pub const BLOCKS_PER_PAGE: u64 = 64;
/// Page size assumed by the detector, in bytes (4 KiB).
pub const PAGE_BYTES: u64 = BLOCK_BYTES * BLOCKS_PER_PAGE;
/// The saturating counter is 4 bits wide (paper, §IV-A).
const SAT_MAX: u8 = 15;

/// A burst request: a half-open range `[start, end)` of *block*
/// addresses the L1 controller should request write permission for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Burst {
    /// First block to prefetch.
    pub start: u64,
    /// One past the last block to prefetch (the page boundary).
    pub end: u64,
}

impl Burst {
    /// Number of blocks in the burst.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the burst is empty (never returned by the detector).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Iterates the block addresses in the burst.
    pub fn blocks(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }
}

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpbConfig {
    /// Check the saturating counter every `n` stores. The paper's
    /// sensitivity analysis (§IV-C) found 24–48 performs well and uses
    /// 48 for the evaluation.
    pub n: u32,
    /// Suppress a second burst for a page that was already burst (one
    /// extra page register; without it, repeated triggers in the same
    /// page would flood the L1 controller with requests that are
    /// immediately discarded as `PopReq`).
    pub dedupe: bool,
}

impl Default for SpbConfig {
    fn default() -> Self {
        Self {
            n: 48,
            dedupe: true,
        }
    }
}

/// The 67-bit Store-Prefetch Burst detector.
///
/// State: `last_block` (58 bits), a 4-bit saturating counter of +1 block
/// transitions, and a store counter (5 bits in the paper; this
/// implementation sizes it as `ceil(log2(n + 1))` bits because the
/// paper's preferred `N = 48` does not fit in 5 bits — see DESIGN.md).
///
/// Per committed store: compute the block-address delta to the previous
/// committed store. Delta 0 (same block, e.g. 8-byte stores filling a
/// line in any intra-block order) leaves the counter alone; delta +1
/// increments it; anything else resets it. Every `n` stores, if the
/// counter reached `n / 8`, the pattern is a contiguous store burst and
/// the detector requests the rest of the page.
///
/// # Examples
///
/// ```
/// use spb_core::detector::{SpbConfig, SpbDetector};
///
/// let mut d = SpbDetector::new(SpbConfig::default());
/// let mut bursts = 0;
/// for i in 0..1024u64 {
///     if d.observe_store(0x10_000 + i * 8).is_some() {
///         bursts += 1;
///     }
/// }
/// assert!(bursts >= 1, "a long memset must trigger");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpbDetector {
    config: SpbConfig,
    last_block: u64,
    sat: u8,
    count: u32,
    last_burst_page: Option<u64>,
    triggers: u64,
    checks: u64,
}

impl SpbDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        assert!(config.n > 0, "the check window must be positive");
        Self {
            config,
            last_block: 0,
            sat: 0,
            count: 0,
            last_burst_page: None,
            triggers: 0,
            checks: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> SpbConfig {
        self.config
    }

    /// The threshold the saturating counter is checked against
    /// (`max(1, n / 8)` for 8-byte stores).
    pub fn threshold(&self) -> u8 {
        ((self.config.n / 8).max(1) as u8).min(SAT_MAX)
    }

    /// Number of window checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of bursts triggered.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Modelled storage cost in bits: 58 (last block) + 4 (saturating
    /// counter) + `ceil(log2(n+1))` (store counter), plus 52 for the
    /// optional last-burst-page register.
    ///
    /// For `n ≤ 31` and no dedupe register this is the paper's 67 bits.
    pub fn storage_bits(&self) -> u32 {
        let count_bits = 32 - (self.config.n).leading_zeros();
        58 + 4 + count_bits + if self.config.dedupe { 52 } else { 0 }
    }

    /// Observes a committed store to byte address `addr`; returns a
    /// [`Burst`] when the contiguous pattern is detected.
    ///
    /// # Window cadence
    ///
    /// The store counter counts `n` stores and the **next** store
    /// performs the check (Figure 4: with `n = 8`, T0–T7 count up and
    /// T8 both checks and fires). The checking store updates the
    /// saturating counter first, is itself *not* counted, and resets
    /// both counters — so exactly one check happens per `n + 1`
    /// observations. The edge case `n = 1` therefore checks on every
    /// second store, not on every store.
    pub fn observe_store(&mut self, addr: u64) -> Option<Burst> {
        let block = addr / BLOCK_BYTES;
        let delta = block.wrapping_sub(self.last_block);
        if delta == 1 {
            self.sat = (self.sat + 1).min(SAT_MAX);
        } else if delta != 0 {
            self.sat = 0;
        }
        self.last_block = block;

        if self.count == self.config.n {
            self.checks += 1;
            let fired = self.sat >= self.threshold();
            self.sat = 0;
            self.count = 0;
            if fired {
                return self.make_burst(block);
            }
        } else {
            self.count += 1;
        }
        None
    }

    fn make_burst(&mut self, block: u64) -> Option<Burst> {
        let page = block / BLOCKS_PER_PAGE;
        if self.config.dedupe && self.last_burst_page == Some(page) {
            return None;
        }
        let page_end = (page + 1) * BLOCKS_PER_PAGE;
        let start = block + 1;
        if start >= page_end {
            return None;
        }
        self.last_burst_page = Some(page);
        self.triggers += 1;
        Some(Burst {
            start,
            end: page_end,
        })
    }

    /// Resets all dynamic state (e.g. on a context switch).
    pub fn reset(&mut self) {
        self.last_block = 0;
        self.sat = 0;
        self.count = 0;
        self.last_burst_page = None;
    }
}

impl fmt::Display for SpbDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spb(n={}, thr={}, {} bits): {} checks, {} bursts",
            self.config.n,
            self.threshold(),
            self.storage_bits(),
            self.checks,
            self.triggers
        )
    }
}

/// The §IV-C dynamic variant: instead of assuming 8-byte stores, the
/// threshold adapts to the store sizes observed in the current window
/// (`n / (64 / S)` for dominant size `S`).
///
/// The paper reports this performs *worse* than plain SPB "due to
/// adaptation hysteresis and lost opportunity"; the model reproduces
/// that by requiring two consecutive windows to agree on the dominant
/// size before the threshold moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpbDynamicDetector {
    inner: SpbDetector,
    size_sum: u64,
    size_count: u32,
    current_size: u8,
    candidate_size: u8,
    candidate_streak: u8,
}

impl SpbDynamicDetector {
    /// Creates the dynamic-threshold detector.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: SpbConfig) -> Self {
        Self {
            inner: SpbDetector::new(config),
            size_sum: 0,
            size_count: 0,
            current_size: 8,
            candidate_size: 8,
            candidate_streak: 0,
        }
    }

    /// The currently adapted store size `S`.
    pub fn adapted_size(&self) -> u8 {
        self.current_size
    }

    /// Number of bursts triggered.
    pub fn triggers(&self) -> u64 {
        self.inner.triggers()
    }

    /// Observes a committed store with its access size.
    pub fn observe_store(&mut self, addr: u64, size: u8) -> Option<Burst> {
        self.size_sum += u64::from(size.max(1));
        self.size_count += 1;
        if self.size_count == self.inner.config.n {
            let avg = (self.size_sum / u64::from(self.size_count)) as u8;
            // Round to the nearest power of two in 1..=64.
            let rounded = avg.max(1).next_power_of_two().min(64);
            if rounded == self.candidate_size {
                self.candidate_streak = self.candidate_streak.saturating_add(1);
            } else {
                self.candidate_size = rounded;
                self.candidate_streak = 0;
            }
            // Hysteresis: only adapt after two agreeing windows.
            if self.candidate_streak >= 1 && self.candidate_size != self.current_size {
                self.current_size = self.candidate_size;
            }
            self.size_sum = 0;
            self.size_count = 0;
        }
        // Threshold n / (blocks-worth of stores): stores_per_block =
        // 64 / S, threshold = n / stores_per_block.
        let stores_per_block = (BLOCK_BYTES / u64::from(self.current_size)).max(1);
        let threshold =
            ((u64::from(self.inner.config.n) / stores_per_block).max(1) as u8).min(SAT_MAX);
        self.observe_with_threshold(addr, threshold)
    }

    fn observe_with_threshold(&mut self, addr: u64, threshold: u8) -> Option<Burst> {
        let d = &mut self.inner;
        let block = addr / BLOCK_BYTES;
        let delta = block.wrapping_sub(d.last_block);
        if delta == 1 {
            d.sat = (d.sat + 1).min(SAT_MAX);
        } else if delta != 0 {
            d.sat = 0;
        }
        d.last_block = block;
        if d.count == d.config.n {
            d.checks += 1;
            let fired = d.sat >= threshold;
            d.sat = 0;
            d.count = 0;
            if fired {
                return d.make_burst(block);
            }
        } else {
            d.count += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n8() -> SpbDetector {
        SpbDetector::new(SpbConfig { n: 8, dedupe: true })
    }

    /// The Figure 4 running example, register for register: eight 64-bit
    /// stores fill block 0x00, the ninth touches block 0x01, and at T8
    /// the check fires a burst for the rest of the page.
    #[test]
    fn figure4_running_example() {
        let mut d = n8();
        // T0..T7: stores 0x000..0x038. Deltas all 0: counter stays 0.
        for i in 0..8u64 {
            assert_eq!(d.observe_store(i * 8), None, "T{i} must not trigger");
            assert_eq!(d.sat, 0);
        }
        assert_eq!(d.count, 8, "St Count = 8 after T7");
        // T8: store 0x040 (block 1). Delta 1: Sat -> 1; window check
        // fires (1 >= 8/8), counters reset, burst covers blocks 2..64.
        let burst = d.observe_store(0x40).expect("T8 generates the SPB");
        assert_eq!(d.sat, 0, "Sat = 1 -> 0");
        assert_eq!(d.count, 0, "St Count = 0");
        assert_eq!(burst, Burst { start: 2, end: 64 });
        assert_eq!(burst.len(), 62);
    }

    #[test]
    fn threshold_is_n_over_8() {
        assert_eq!(
            SpbDetector::new(SpbConfig {
                n: 48,
                dedupe: true
            })
            .threshold(),
            6
        );
        assert_eq!(
            SpbDetector::new(SpbConfig {
                n: 24,
                dedupe: true
            })
            .threshold(),
            3
        );
        assert_eq!(
            SpbDetector::new(SpbConfig { n: 8, dedupe: true }).threshold(),
            1
        );
        assert_eq!(
            SpbDetector::new(SpbConfig { n: 4, dedupe: true }).threshold(),
            1
        );
    }

    #[test]
    fn paper_storage_is_67_bits_for_5bit_counter() {
        // With n <= 31 the store counter fits in 5 bits: 58 + 4 + 5 = 67.
        let d = SpbDetector::new(SpbConfig {
            n: 31,
            dedupe: false,
        });
        assert_eq!(d.storage_bits(), 67);
        // The paper's preferred n = 48 needs a 6-bit counter.
        let d48 = SpbDetector::new(SpbConfig {
            n: 48,
            dedupe: false,
        });
        assert_eq!(d48.storage_bits(), 68);
    }

    #[test]
    fn default_n_is_48_per_sensitivity_analysis() {
        assert_eq!(SpbConfig::default().n, 48);
    }

    #[test]
    fn sparse_stores_never_trigger() {
        let mut d = SpbDetector::new(SpbConfig::default());
        let mut x = 99u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            assert_eq!(d.observe_store((x % (1 << 30)) & !7), None);
        }
        assert_eq!(d.triggers(), 0);
    }

    #[test]
    fn intra_block_shuffle_still_triggers() {
        // Stores cover blocks in order but each block's 8 stores are
        // permuted: deltas are 0 within a block and +1 across blocks.
        let mut d = SpbDetector::new(SpbConfig::default());
        let perm = [3u64, 0, 7, 1, 6, 2, 5, 4];
        let mut triggered = false;
        for blk in 0..64u64 {
            for &slot in &perm {
                if d.observe_store(blk * 64 + slot * 8).is_some() {
                    triggered = true;
                }
            }
        }
        assert!(
            triggered,
            "block-level contiguity must be detected through shuffle"
        );
    }

    #[test]
    fn cross_block_interleave_resets_counter() {
        // Alternating stores between two far-apart streams: deltas are
        // huge, the counter must never advance.
        let mut d = SpbDetector::new(SpbConfig::default());
        for i in 0..2_000u64 {
            let addr = if i % 2 == 0 {
                i / 2 * 8
            } else {
                0x4000_0000 + i / 2 * 8
            };
            assert_eq!(d.observe_store(addr), None);
        }
        assert_eq!(d.triggers(), 0);
    }

    #[test]
    fn burst_never_crosses_page_boundary() {
        let mut d = SpbDetector::new(SpbConfig {
            n: 8,
            dedupe: false,
        });
        let mut max_end_block = 0u64;
        for i in 0..4096u64 {
            if let Some(b) = d.observe_store(0x7000 + i * 8) {
                assert_eq!(
                    (b.end - 1) / BLOCKS_PER_PAGE,
                    b.start / BLOCKS_PER_PAGE,
                    "burst {b:?} crosses a page"
                );
                max_end_block = max_end_block.max(b.end);
            }
        }
        assert!(max_end_block > 0, "something must have triggered");
    }

    /// Regression for the historical proptest shrink to `n = 1`: the
    /// smallest window must follow the same check-every-`n + 1` cadence
    /// and page-bounded burst invariant as every other window size.
    #[test]
    fn n1_window_checks_every_second_store() {
        let mut d = SpbDetector::new(SpbConfig {
            n: 1,
            dedupe: false,
        });
        for i in 0..1000u64 {
            if let Some(b) = d.observe_store(i * 8) {
                assert!(!b.is_empty());
                assert_eq!(b.start / BLOCKS_PER_PAGE, (b.end - 1) / BLOCKS_PER_PAGE);
                assert_eq!(b.end % BLOCKS_PER_PAGE, 0);
            }
        }
        // 1000 observations = 500 full (count + check) windows.
        assert_eq!(d.checks(), 500);
        assert!(d.triggers() <= d.checks());
        assert!(d.triggers() > 0, "a contiguous stream must trigger at n=1");
    }

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(PAGE_BYTES, 4096);
        assert_eq!(PAGE_BYTES, BLOCK_BYTES * BLOCKS_PER_PAGE);
    }

    #[test]
    fn dedupe_suppresses_repeat_bursts_in_page() {
        let run = |dedupe: bool| {
            let mut d = SpbDetector::new(SpbConfig { n: 8, dedupe });
            let mut count = 0;
            for i in 0..512u64 {
                if d.observe_store(i * 8).is_some() {
                    count += 1;
                }
            }
            count
        };
        assert_eq!(run(true), 1, "one burst per page with dedupe");
        assert!(run(false) > 1, "repeated triggers without dedupe");
    }

    #[test]
    fn fresh_page_bursts_again_after_dedupe() {
        let mut d = SpbDetector::new(SpbConfig { n: 8, dedupe: true });
        let mut bursts = 0;
        for page in 0..4u64 {
            for i in 0..512u64 {
                if d.observe_store(page * 4096 + i * 8).is_some() {
                    bursts += 1;
                }
            }
        }
        assert_eq!(bursts, 4, "each new page gets its own burst");
    }

    #[test]
    fn trigger_at_page_end_yields_nothing() {
        let mut d = SpbDetector::new(SpbConfig {
            n: 8,
            dedupe: false,
        });
        // Walk the tail of a page so the check lands on the last block.
        let mut got_empty_burst = false;
        for i in 0..512u64 {
            if let Some(b) = d.observe_store(i * 8) {
                if b.is_empty() {
                    got_empty_burst = true;
                }
            }
        }
        assert!(
            !got_empty_burst,
            "the detector must never emit empty bursts"
        );
    }

    #[test]
    fn saturating_counter_stays_in_4_bits() {
        let mut d = SpbDetector::new(SpbConfig {
            n: 1_000_000,
            dedupe: true,
        });
        // 1M+ consecutive-block stores without a window check: the
        // counter must saturate at 15, not overflow.
        for i in 0..100_000u64 {
            let _ = d.observe_store(i * 64); // one store per block: all +1 deltas
            assert!(d.sat <= SAT_MAX);
        }
        assert_eq!(d.sat, SAT_MAX);
    }

    #[test]
    fn reset_clears_dynamic_state() {
        let mut d = n8();
        for i in 0..12u64 {
            let _ = d.observe_store(i * 8);
        }
        d.reset();
        assert_eq!(d.count, 0);
        assert_eq!(d.sat, 0);
        assert_eq!(d.last_burst_page, None);
    }

    #[test]
    fn dynamic_variant_adapts_to_4_byte_stores() {
        let mut d = SpbDynamicDetector::new(SpbConfig {
            n: 16,
            dedupe: true,
        });
        // 4-byte stores: 16 per block. Feed several windows so the size
        // adapts, then verify it still triggers on contiguity.
        let mut triggered = false;
        for i in 0..8_192u64 {
            if d.observe_store(i * 4, 4).is_some() {
                triggered = true;
            }
        }
        assert_eq!(d.adapted_size(), 4);
        assert!(triggered, "4-byte bursts must be detected once adapted");
    }

    #[test]
    fn dynamic_variant_hysteresis_delays_adaptation() {
        let mut d = SpbDynamicDetector::new(SpbConfig { n: 8, dedupe: true });
        // One window of 4-byte stores is not enough to adapt.
        for i in 0..8u64 {
            let _ = d.observe_store(i * 4, 4);
        }
        assert_eq!(d.adapted_size(), 8, "hysteresis holds the old size");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_n_panics() {
        let _ = SpbDetector::new(SpbConfig { n: 0, dedupe: true });
    }
}

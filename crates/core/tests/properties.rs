//! Property-based tests for the SPB detector.

use proptest::prelude::*;
use spb_core::detector::{SpbConfig, SpbDetector, SpbDynamicDetector, BLOCKS_PER_PAGE};

proptest! {
    /// No burst ever crosses a 4 KiB page boundary, and bursts are never
    /// empty, for any address stream and any window size.
    #[test]
    fn bursts_stay_within_pages(
        n in 1u32..64,
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..2000),
    ) {
        let mut d = SpbDetector::new(SpbConfig { n, dedupe: false });
        for addr in addrs {
            if let Some(b) = d.observe_store(addr) {
                prop_assert!(!b.is_empty());
                // start/end are *block* addresses: page = block / BLOCKS_PER_PAGE.
                prop_assert_eq!(
                    b.start / BLOCKS_PER_PAGE,
                    (b.end - 1) / BLOCKS_PER_PAGE,
                    "burst {:?} crosses a page", b
                );
                prop_assert!(b.end % BLOCKS_PER_PAGE == 0, "burst must end at the page boundary");
            }
        }
    }

    /// The detector's trigger count never exceeds its check count, and
    /// checks happen exactly every N+1 observations.
    #[test]
    fn checks_follow_the_window(n in 1u32..64, count in 1usize..4000) {
        let mut d = SpbDetector::new(SpbConfig { n, dedupe: false });
        for i in 0..count as u64 {
            let _ = d.observe_store(i * 8);
        }
        prop_assert!(d.triggers() <= d.checks());
        prop_assert_eq!(d.checks(), count as u64 / (u64::from(n) + 1));
    }

    /// A purely contiguous 8-byte store stream triggers for every
    /// sensible window (the pattern SPB is built for), while a stream of
    /// stores that never leaves one block cannot trigger.
    #[test]
    fn contiguous_triggers_same_block_does_not(n in 8u32..49) {
        let mut contiguous = SpbDetector::new(SpbConfig { n, dedupe: false });
        let mut fired = false;
        for i in 0..20_000u64 {
            fired |= contiguous.observe_store(i * 8).is_some();
        }
        prop_assert!(fired, "contiguous stream must trigger for n={n}");

        let mut same_block = SpbDetector::new(SpbConfig { n, dedupe: false });
        for i in 0..20_000u64 {
            prop_assert_eq!(same_block.observe_store((i % 8) * 8), None);
        }
    }

    /// Dedupe only ever removes bursts; it never creates new ones and
    /// never changes which pages are covered first.
    #[test]
    fn dedupe_is_a_filter(addrs in proptest::collection::vec(0u64..(1 << 20), 1..2000)) {
        let mut plain = SpbDetector::new(SpbConfig { n: 8, dedupe: false });
        let mut deduped = SpbDetector::new(SpbConfig { n: 8, dedupe: true });
        let mut plain_bursts = Vec::new();
        let mut deduped_bursts = Vec::new();
        for &addr in &addrs {
            if let Some(b) = plain.observe_store(addr) {
                plain_bursts.push(b);
            }
            if let Some(b) = deduped.observe_store(addr) {
                deduped_bursts.push(b);
            }
        }
        prop_assert!(deduped_bursts.len() <= plain_bursts.len());
        // Every deduped burst appears in the plain stream too.
        for b in &deduped_bursts {
            prop_assert!(plain_bursts.contains(b), "dedupe invented burst {b:?}");
        }
    }

    /// Storage accounting: the counter width grows as log2 of N and the
    /// paper's 67-bit figure holds exactly for N ≤ 31 without dedupe.
    #[test]
    fn storage_bits_accounting(n in 1u32..1024) {
        let d = SpbDetector::new(SpbConfig { n, dedupe: false });
        let count_bits = 32 - n.leading_zeros();
        prop_assert_eq!(d.storage_bits(), 58 + 4 + count_bits);
        // The paper's 67-bit figure corresponds to a 5-bit store counter
        // (windows of 16..=31 stores).
        if (16..=31).contains(&n) {
            prop_assert_eq!(d.storage_bits(), 67);
        }
    }

    /// The dynamic variant degenerates to the plain detector when all
    /// stores are 8 bytes (its adapted size stays 8).
    #[test]
    fn dynamic_matches_plain_for_8_byte_stores(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..1500),
    ) {
        let mut plain = SpbDetector::new(SpbConfig { n: 16, dedupe: true });
        let mut dynamic = SpbDynamicDetector::new(SpbConfig { n: 16, dedupe: true });
        for &addr in &addrs {
            let a = plain.observe_store(addr);
            let b = dynamic.observe_store(addr, 8);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(dynamic.adapted_size(), 8);
    }
}

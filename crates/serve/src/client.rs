//! A minimal blocking client for the sweep service.
//!
//! One request = one connection: connect, send a single JSON line,
//! read a single JSON line back. The server keeps connections open for
//! pipelining, but the one-shot shape is all the CLI and the smoke
//! gates need, and it makes client failure modes trivial (any error is
//! surfaced as an `Err(String)` with the transport or server message).

use crate::spec::JobSpec;
use spb_stats::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Sends one raw request line and returns the parsed reply.
///
/// # Errors
///
/// Transport errors, malformed replies, and server-side rejections
/// (`{"ok": false, …}`) all come back as `Err` with the reason.
pub fn request(addr: &str, line: &Json) -> Result<Json, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let text = line.to_string();
    debug_assert!(!text.contains('\n'), "requests are one line");
    stream
        .write_all(format!("{text}\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("receive: {e}"))?;
    if reply.trim().is_empty() {
        return Err("server closed the connection without replying".into());
    }
    let parsed = Json::parse(reply.trim()).map_err(|e| format!("bad reply: {e}"))?;
    match parsed.get("ok") {
        Some(Json::Bool(true)) => Ok(parsed),
        Some(Json::Bool(false)) => Err(parsed
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("server rejected the request")
            .to_string()),
        _ => Err(format!("reply missing ok field: {parsed}")),
    }
}

/// Submits a sweep job and blocks until its report. The reply carries
/// `report` (checksummed `SweepReport` JSON) and `stats` (`cache_hits`,
/// `computed`, `retries`, `failed` for this job).
///
/// # Errors
///
/// See [`request`]; notably `overloaded: …` when the server shed the
/// job.
pub fn submit(addr: &str, job: &JobSpec) -> Result<Json, String> {
    request(
        addr,
        &Json::obj([("type", Json::str("sweep")), ("job", job.to_json())]),
    )
}

/// Fetches the health/stats snapshot (`queue_depth` plus the service
/// counters).
///
/// # Errors
///
/// See [`request`].
pub fn health(addr: &str) -> Result<Json, String> {
    request(addr, &Json::obj([("type", Json::str("health"))]))
}

/// Asks the server to shut down gracefully.
///
/// # Errors
///
/// See [`request`].
pub fn shutdown(addr: &str) -> Result<Json, String> {
    request(addr, &Json::obj([("type", Json::str("shutdown"))]))
}

//! The sweep job server.
//!
//! A [`Server`] listens on a local TCP socket for line-delimited JSON
//! requests (see the crate docs for the protocol), runs sweep jobs one
//! at a time on a supervised worker pool, and answers with
//! [`spb_sim::sweep::SweepReport`]-schema results. The robustness
//! pieces compose here:
//!
//! - every cell goes through the [`crate::cache::ResultCache`] first —
//!   hits skip simulation entirely and are bit-identical to a fresh
//!   deterministic run;
//! - misses run under [`spb_sim::sweep::run_cells_supervised`]:
//!   panics/deadlines/injected chaos retry with seeded backoff,
//!   invariant violations fail fast into the report's `failed` array;
//! - the [`crate::journal::Journal`] write-ahead log makes accepted
//!   jobs durable: a `kill -9` mid-sweep is recovered on restart with
//!   only uncached cells re-run;
//! - the job queue is bounded: past the limit, submissions get an
//!   explicit `overloaded` rejection immediately — the server never
//!   accepts work it cannot promise to journal and run.

use crate::cache::{CacheKey, Lookup, ResultCache};
use crate::journal::Journal;
use crate::spec::JobSpec;
use spb_obs::SharedCounters;
use spb_sim::config::SimConfig;
use spb_sim::sweep::{
    run_cells_supervised, ChaosPlan, Supervision, SweepOptions, SweepRecord, SweepReport,
};
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (the bound
    /// address is reported by [`Server::addr`]).
    pub addr: String,
    /// State directory: holds `cache/`, `journal.waj` and `reports/`.
    pub dir: PathBuf,
    /// Worker threads per sweep.
    pub jobs: usize,
    /// Maximum queued jobs before submissions are shed.
    pub queue_limit: usize,
    /// Default total attempts per cell (jobs may ask for more).
    pub retry: u32,
    /// Default per-attempt deadline (jobs may set their own).
    pub deadline_ms: Option<u64>,
    /// LRU bound on cached cell results (entries, not bytes); `None`
    /// leaves the cache unbounded. Eviction never corrupts: an evicted
    /// cell is a clean miss that recomputes bit-identically.
    pub cache_max_entries: Option<usize>,
}

impl ServeConfig {
    /// Localhost on an ephemeral port, state under `dir`, defaults
    /// everywhere else (workers = available parallelism, queue of 4,
    /// 3 attempts, 5-minute cell deadline).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            dir: dir.into(),
            jobs: spb_sim::sweep::default_jobs(),
            queue_limit: 4,
            retry: 3,
            deadline_ms: Some(300_000),
            cache_max_entries: None,
        }
    }
}

/// One queued job; recovered jobs have no reply channel.
struct QueuedJob {
    id: String,
    spec: JobSpec,
    reply: Option<mpsc::SyncSender<String>>,
}

/// The sweep job server. Bind with [`Server::bind`], run with
/// [`Server::serve`] (blocks until a `shutdown` request).
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    cache: ResultCache,
    journal: Mutex<Journal>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    stats: SharedCounters,
    shutdown: AtomicBool,
}

impl Server {
    /// Opens the state directory (recovering any journaled jobs that
    /// never finished) and binds the listen socket.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and socket errors.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let mut cache = ResultCache::open(cfg.dir.join("cache"))?;
        if let Some(n) = cfg.cache_max_entries {
            cache = cache.with_entry_bound(n);
        }
        let (journal, recovery) = Journal::open(cfg.dir.join("journal.waj"))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let stats = SharedCounters::new();
        // Register the headline counters up front so health responses
        // list them (as zeros) from the first request.
        for name in [
            "jobs_accepted",
            "jobs_completed",
            "jobs_recovered",
            "jobs_shed",
            "cells_computed",
            "cache_hits",
            "cache_corrupt",
            "cell_retries",
            "cells_failed",
            "journal_corrupt_lines",
        ] {
            stats.add(name, 0);
        }
        stats.add("journal_corrupt_lines", recovery.corrupt_lines as u64);
        let mut queue = VecDeque::new();
        for (id, spec) in recovery.pending {
            stats.inc("jobs_recovered");
            queue.push_back(QueuedJob {
                id,
                spec,
                reply: None,
            });
        }
        Ok(Self {
            cfg,
            listener,
            cache,
            journal: Mutex::new(journal),
            queue: Mutex::new(queue),
            queue_cv: Condvar::new(),
            stats,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The live service counters (shared with every handler).
    pub fn stats(&self) -> &SharedCounters {
        &self.stats
    }

    /// Accepts connections and runs jobs until a `shutdown` request.
    /// Recovered jobs start executing immediately, before any client
    /// connects.
    ///
    /// # Errors
    ///
    /// Propagates fatal accept-loop errors (per-connection errors are
    /// absorbed).
    pub fn serve(&self) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            scope.spawn(|| self.runner());
            for conn in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    scope.spawn(move || self.handle(stream));
                }
            }
            // Make sure the runner observes shutdown even if the queue
            // is empty.
            self.shutdown.store(true, Ordering::SeqCst);
            self.queue_cv.notify_all();
        });
        Ok(())
    }

    /// One connection: serve line-delimited requests until EOF (or a
    /// shutdown request closes the server).
    fn handle(&self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut write_half = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let request = line.trim();
            if request.is_empty() {
                continue;
            }
            let reply = self.dispatch(request);
            if writeln!(write_half, "{reply}").and_then(|()| write_half.flush()).is_err() {
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
    }

    fn error(message: impl Into<String>) -> String {
        Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str(message.into())),
        ])
        .to_string()
    }

    /// Routes one request line to its handler and renders the reply
    /// line.
    fn dispatch(&self, request: &str) -> String {
        let parsed = match Json::parse(request) {
            Ok(v) => v,
            Err(e) => return Self::error(format!("bad request: {e}")),
        };
        match parsed.get("type").and_then(Json::as_str) {
            Some("sweep") => match parsed.get("job").map(JobSpec::from_json) {
                Some(Ok(job)) => self.submit(job),
                Some(Err(e)) => Self::error(format!("bad job: {e}")),
                None => Self::error("sweep request needs a job object"),
            },
            Some("health") => self.health(),
            Some("shutdown") => self.begin_shutdown(),
            Some(other) => Self::error(format!(
                "unknown request type {other:?} (valid: sweep, health, shutdown)"
            )),
            None => Self::error("request needs a type field"),
        }
    }

    /// Journals and enqueues a job, then blocks until the runner's
    /// reply. Returns an explicit `overloaded` rejection — never
    /// queues unboundedly, never hangs — when the queue is full.
    fn submit(&self, job: JobSpec) -> String {
        let id = Journal::job_id(&job);
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut queue = self.queue.lock().expect("queue poisoned");
            if queue.len() >= self.cfg.queue_limit {
                self.stats.inc("jobs_shed");
                return Self::error(format!(
                    "overloaded: queue full ({} jobs); resubmit later",
                    queue.len()
                ));
            }
            // Write-ahead: the job becomes durable before it becomes
            // runnable. A journal failure rejects the job outright.
            if let Err(e) = self
                .journal
                .lock()
                .expect("journal poisoned")
                .accepted(&id, &job)
            {
                return Self::error(format!("journal write failed: {e}"));
            }
            queue.push_back(QueuedJob {
                id,
                spec: job,
                reply: Some(tx),
            });
        }
        self.stats.inc("jobs_accepted");
        self.queue_cv.notify_one();
        rx.recv()
            .unwrap_or_else(|_| Self::error("server shut down before the job completed"))
    }

    /// The health/stats endpoint: queue depth plus the live counters as
    /// a metrics registry.
    fn health(&self) -> String {
        let depth = self.queue.lock().expect("queue poisoned").len();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("queue_depth", Json::from(depth)),
            ("metrics", self.stats.to_registry("serve").to_json()),
        ])
        .to_string()
    }

    /// Flags shutdown, wakes the runner, and unblocks the accept loop
    /// with a self-connection.
    fn begin_shutdown(&self) -> String {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        if let Ok(addr) = self.addr() {
            let _ = TcpStream::connect(addr);
        }
        Json::obj([("ok", Json::Bool(true))]).to_string()
    }

    /// The single job runner: pops jobs in order, executes them, and
    /// replies. On shutdown, queued-but-unstarted jobs get an explicit
    /// rejection (they stay journaled as accepted, so a restart
    /// recovers them).
    fn runner(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue poisoned");
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        for job in queue.drain(..) {
                            if let Some(reply) = job.reply {
                                let _ = reply
                                    .send(Self::error("server shutting down; job stays journaled"));
                            }
                        }
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self.queue_cv.wait(queue).expect("queue poisoned");
                }
            };
            let reply = self.run_job(&job.spec);
            {
                let mut journal = self.journal.lock().expect("journal poisoned");
                let _ = journal.done(&job.id);
            }
            self.stats.inc("jobs_completed");
            if let Some(tx) = job.reply {
                let _ = tx.send(reply);
            }
        }
    }

    /// Executes one job: cache pass, supervised computation of the
    /// misses, cache stores, report assembly in request order.
    fn run_job(&self, job: &JobSpec) -> String {
        let (profiles, resolved) = match job.resolve() {
            Ok(r) => r,
            Err(e) => return Self::error(format!("bad job: {e}")),
        };
        let keys: Vec<CacheKey> = resolved
            .iter()
            .map(|(pi, cfg)| CacheKey::for_cell(profiles[*pi].name(), cfg))
            .collect();
        let mut records: Vec<Option<SweepRecord>> = vec![None; resolved.len()];
        let mut misses: Vec<usize> = Vec::new();
        let (mut hits, mut corrupt) = (0u64, 0u64);
        for (i, &key) in keys.iter().enumerate() {
            match self.cache.lookup(key) {
                Lookup::Hit(record) => {
                    hits += 1;
                    records[i] = Some(record);
                }
                Lookup::Miss => misses.push(i),
                Lookup::Corrupt(_) => {
                    corrupt += 1;
                    misses.push(i);
                }
            }
        }
        self.stats.add("cache_hits", hits);
        self.stats.add("cache_corrupt", corrupt);

        let supervision = Supervision {
            max_attempts: job.retry.max(self.cfg.retry).max(1),
            deadline_ms: job.deadline_ms.or(self.cfg.deadline_ms),
            chaos: (job.fault_rate_e4 > 0).then_some(ChaosPlan {
                rate_e4: job.fault_rate_e4,
                seed: job.fault_seed,
            }),
            ..Supervision::default()
        };
        let opts = SweepOptions::with_jobs(self.cfg.jobs);

        // Misses run in worker-pool-sized chunks, and each chunk's
        // results hit the cache (and the counters) before the next one
        // starts: a crash mid-job loses at most one chunk of work, so
        // restart recovery re-simulates only the cells that never made
        // it to disk.
        let (mut computed, mut retries, mut failed_count) = (0u64, 0u64, 0u64);
        let mut failed = Vec::new();
        for miss_chunk in misses.chunks(self.cfg.jobs.max(1)) {
            let cells: Vec<(&AppProfile, SimConfig)> = miss_chunk
                .iter()
                .map(|&i| (&profiles[resolved[i].0], resolved[i].1.clone()))
                .collect();
            let outcomes = run_cells_supervised(&cells, &opts, &supervision);
            let (mut chunk_computed, mut chunk_retries, mut chunk_failed) = (0u64, 0u64, 0u64);
            for ((outcome, attempts), &i) in outcomes.into_iter().zip(miss_chunk) {
                chunk_retries += u64::from(attempts.saturating_sub(1));
                match outcome {
                    Ok(run) => {
                        let record = SweepRecord::from_run(&run);
                        // A store failure is not fatal: the result still
                        // goes into this report, the cell just isn't
                        // durable for the next job.
                        if self
                            .cache
                            .store(keys[i], profiles[resolved[i].0].name(), &record)
                            .is_err()
                        {
                            self.stats.inc("cache_store_errors");
                        }
                        chunk_computed += 1;
                        records[i] = Some(record);
                    }
                    Err(f) => {
                        chunk_failed += 1;
                        failed.push(f);
                    }
                }
            }
            self.stats.add("cells_computed", chunk_computed);
            self.stats.add("cell_retries", chunk_retries);
            self.stats.add("cells_failed", chunk_failed);
            computed += chunk_computed;
            retries += chunk_retries;
            failed_count += chunk_failed;
        }

        let job_stats = Json::obj([
            ("cache_hits", Json::from(hits)),
            ("cache_corrupt", Json::from(corrupt)),
            ("computed", Json::from(computed)),
            ("retries", Json::from(retries)),
            ("failed", Json::from(failed_count)),
        ]);
        let report = SweepReport {
            name: job.name.clone(),
            records: records.into_iter().flatten().collect(),
            failed,
            metrics: Some(Json::obj([("serve_job", job_stats.clone())])),
        };
        // Durable copy under reports/ (crash-safe save); the reply does
        // not depend on it succeeding.
        let _ = report.save(&self.cfg.dir.join("reports"));
        let report_json = Json::parse(&report.to_json_string_checksummed())
            .expect("reports serialize to valid json");
        Json::obj([
            ("ok", Json::Bool(true)),
            ("report", report_json),
            ("stats", job_stats),
        ])
        .to_string()
    }
}

//! Fault-tolerant sweep-as-a-service for the SPB simulator.
//!
//! The paper's evaluation is a design-space grid, and ROADMAP item 2
//! calls for running such grids as a long-lived local service rather
//! than a one-shot CLI. This crate is that service, built std-only on
//! [`spb_sim::sweep`]'s deterministic executor, with robustness as the
//! headline feature:
//!
//! - **Supervised workers** ([`spb_sim::sweep::run_cells_supervised`]):
//!   worker panics, per-cell deadline overruns and injected chaos
//!   become structured failures that retry with deterministic seeded
//!   exponential backoff; invariant violations fail fast.
//! - **Content-addressed cache** ([`cache::ResultCache`]): every cell
//!   result is persisted under a key derived from (app, full config
//!   digest, code version), checksummed, written atomically, and
//!   quarantined + recomputed on corruption.
//! - **Write-ahead journal** ([`journal::Journal`]): jobs are durable
//!   before they are runnable; a `kill -9` mid-sweep recovers on
//!   restart with only uncached cells re-simulated.
//! - **Graceful degradation** ([`service::Server`]): a bounded queue
//!   with explicit `overloaded` rejections (never hangs) and a
//!   health/stats endpoint backed by [`spb_obs::SharedCounters`].
//!
//! # Protocol
//!
//! Line-delimited JSON over TCP; one request object per line, one
//! reply object per line:
//!
//! ```json
//! {"type": "sweep", "job": {"name": "g", "budget": "quick",
//!  "cells": [{"app": "x264", "policy": "spb", "sb": 14}]}}
//! {"type": "health"}
//! {"type": "shutdown"}
//! ```
//!
//! Sweep replies carry `report` (checksummed
//! [`spb_sim::sweep::SweepReport`] JSON, records in request order) and
//! `stats` (`cache_hits`, `computed`, `retries`, `failed`). Every
//! error is an explicit `{"ok": false, "error": "…"}` line.
//!
//! # Example
//!
//! ```no_run
//! use spb_serve::{client, JobSpec, ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig::at("/tmp/spb-serve")).unwrap();
//! let addr = server.addr().unwrap().to_string();
//! std::thread::spawn(move || server.serve());
//! let reply = client::submit(&addr, &JobSpec::quick_grid()).unwrap();
//! assert!(reply.get("report").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod journal;
pub mod service;
pub mod spec;

pub use cache::{CacheKey, Lookup, ResultCache};
pub use journal::{Journal, Recovery};
pub use service::{ServeConfig, Server};
pub use spec::{Budget, CellSpec, JobSpec};

/// The simulator code version baked into every cache key.
///
/// Bump this whenever a change can alter simulated numbers (new
/// kernels, policy fixes, config defaults): old cache entries then
/// miss — and are recomputed — instead of silently serving stale
/// results from a different simulator.
pub const CODE_VERSION: &str = concat!("spb-", env!("CARGO_PKG_VERSION"), "-g1");

//! Job specifications: what a client asks the sweep service to run.
//!
//! A [`JobSpec`] is the wire-level description of one sweep: a name, a
//! simulation budget, optional supervision knobs (retry count,
//! per-cell deadline, injected fault rate for chaos testing), and a
//! list of [`CellSpec`]s naming `(app, policy, sb)` cells. It uses the
//! same dependency-free JSON as [`spb_sim::sweep::SweepReport`], so the
//! request and response sides of the protocol share one schema family.

use spb_sim::config::{PolicyKind, SimConfig};
use spb_trace::SquashConfig;
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;

/// Simulation budget names accepted on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Budget {
    /// [`SimConfig::quick`] — the CI/golden-grid budget.
    #[default]
    Quick,
    /// [`SimConfig::paper_default`] — the full paper budget.
    Paper,
}

impl Budget {
    /// Parses the wire spelling (`quick` / `paper`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "quick" => Ok(Budget::Quick),
            "paper" => Ok(Budget::Paper),
            other => Err(format!("unknown budget {other:?} (valid: quick, paper)")),
        }
    }

    /// The wire spelling.
    pub fn label(&self) -> &'static str {
        match self {
            Budget::Quick => "quick",
            Budget::Paper => "paper",
        }
    }

    /// The base configuration this budget names.
    pub fn sim_config(&self) -> SimConfig {
        match self {
            Budget::Quick => SimConfig::quick(),
            Budget::Paper => SimConfig::paper_default(),
        }
    }
}

/// One requested sweep cell: which app, policy, and configured SB size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Application name ([`AppProfile::by_name`]).
    pub app: String,
    /// Policy spelling ([`PolicyKind::parse`]).
    pub policy: String,
    /// Configured SB entries (the *ideal* policy overrides the
    /// effective size regardless).
    pub sb: usize,
}

impl CellSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("app", Json::str(&self.app)),
            ("policy", Json::str(&self.policy)),
            ("sb", Json::from(self.sb)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            app: v
                .get("app")
                .and_then(Json::as_str)
                .ok_or("cell: app must be a string")?
                .to_string(),
            policy: v
                .get("policy")
                .and_then(Json::as_str)
                .ok_or("cell: policy must be a string")?
                .to_string(),
            sb: v
                .get("sb")
                .and_then(Json::as_usize)
                .ok_or("cell: sb must be an integer")?,
        })
    }
}

/// A resolved job: the distinct app profiles plus, per cell in request
/// order, `(profile index, full SimConfig)`.
pub type ResolvedCells = (Vec<AppProfile>, Vec<(usize, SimConfig)>);

/// One sweep job as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Report name for the result.
    pub name: String,
    /// Simulation budget.
    pub budget: Budget,
    /// Total attempts per cell (1 = no retry).
    pub retry: u32,
    /// Per-attempt deadline in milliseconds (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// Injected transient-fault probability per attempt, in units of
    /// 1/10000 (0 = chaos off). Used by chaos tests and the CI gate.
    pub fault_rate_e4: u32,
    /// Seed for the injected-fault draw.
    pub fault_seed: u64,
    /// Override the budget's warm-up µops (tests use tiny budgets).
    pub warmup_uops: Option<u64>,
    /// Override the budget's measured µops.
    pub measure_uops: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// Wrong-path squash model for every cell, as a
    /// [`SquashConfig`] label (absent = model off). Kept as the wire
    /// spelling so old clients and old cache entries are untouched.
    pub squash: Option<String>,
    /// The cells to simulate, in report order.
    pub cells: Vec<CellSpec>,
}

impl JobSpec {
    /// A job with no supervision extras over `cells`.
    pub fn new(name: impl Into<String>, budget: Budget, cells: Vec<CellSpec>) -> Self {
        Self {
            name: name.into(),
            budget,
            retry: 1,
            deadline_ms: None,
            fault_rate_e4: 0,
            fault_seed: 0,
            warmup_uops: None,
            measure_uops: None,
            seed: None,
            squash: None,
            cells,
        }
    }

    /// The full quick grid behind `results/sweep-grid-quick.json`: the
    /// ideal SB plus {at-execute, at-commit, spb} × {14, 28, 56} over
    /// SPEC CPU 2017, in exactly the golden file's record order
    /// (config-major, app-minor).
    pub fn quick_grid() -> Self {
        let apps = AppProfile::spec2017();
        let default_sb = SimConfig::quick().core.sb_entries;
        let mut configs = vec![("ideal", default_sb)];
        for policy in ["at-execute", "at-commit", "spb"] {
            for sb in [14usize, 28, 56] {
                configs.push((policy, sb));
            }
        }
        let cells = configs
            .iter()
            .flat_map(|&(policy, sb)| {
                apps.iter().map(move |a| CellSpec {
                    app: a.name().to_string(),
                    policy: policy.to_string(),
                    sb,
                })
            })
            .collect();
        Self::new("sweep-grid-quick", Budget::Quick, cells)
    }

    /// Serializes the job for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(&self.name)),
            ("budget", Json::str(self.budget.label())),
        ];
        if self.retry != 1 {
            pairs.push(("retry", Json::from(u64::from(self.retry))));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::from(ms)));
        }
        if self.fault_rate_e4 != 0 {
            pairs.push(("fault_rate_e4", Json::from(u64::from(self.fault_rate_e4))));
            pairs.push(("fault_seed", Json::from(self.fault_seed)));
        }
        if let Some(w) = self.warmup_uops {
            pairs.push(("warmup_uops", Json::from(w)));
        }
        if let Some(m) = self.measure_uops {
            pairs.push(("measure_uops", Json::from(m)));
        }
        if let Some(s) = self.seed {
            pairs.push(("seed", Json::from(s)));
        }
        if let Some(sq) = &self.squash {
            pairs.push(("squash", Json::str(sq)));
        }
        pairs.push(("cells", Json::arr(self.cells.iter().map(CellSpec::to_json))));
        Json::obj(pairs)
    }

    /// Parses a job from its wire form.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("job: name must be a string")?
            .to_string();
        let budget = match v.get("budget") {
            None => Budget::default(),
            Some(b) => Budget::parse(b.as_str().ok_or("job: budget must be a string")?)?,
        };
        let retry = match v.get("retry") {
            None => 1,
            Some(r) => u32::try_from(r.as_u64().ok_or("job: retry must be an integer")?)
                .map_err(|_| "job: retry out of range")?,
        };
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(d.as_u64().ok_or("job: deadline_ms must be an integer")?),
        };
        let fault_rate_e4 = match v.get("fault_rate_e4") {
            None => 0,
            Some(r) => u32::try_from(r.as_u64().ok_or("job: fault_rate_e4 must be an integer")?)
                .map_err(|_| "job: fault_rate_e4 out of range")?,
        };
        let fault_seed = match v.get("fault_seed") {
            None => 0,
            Some(s) => s.as_u64().ok_or("job: fault_seed must be an integer")?,
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(x) => Ok(Some(
                    x.as_u64().ok_or(format!("job: {key} must be an integer"))?,
                )),
            }
        };
        let warmup_uops = opt_u64("warmup_uops")?;
        let measure_uops = opt_u64("measure_uops")?;
        let seed = opt_u64("seed")?;
        let squash = match v.get("squash") {
            None => None,
            Some(sq) => {
                let spec = sq.as_str().ok_or("job: squash must be a string")?;
                // Validate at the door so a bad spec is rejected at
                // submission, not when the cell runs.
                SquashConfig::parse(spec).map_err(|e| format!("job: squash: {e}"))?;
                Some(spec.to_string())
            }
        };
        let cells = v
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("job: cells must be an array")?
            .iter()
            .map(CellSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if cells.is_empty() {
            return Err("job: cells must be non-empty".into());
        }
        Ok(Self {
            name,
            budget,
            retry,
            deadline_ms,
            fault_rate_e4,
            fault_seed,
            warmup_uops,
            measure_uops,
            seed,
            squash,
            cells,
        })
    }

    /// Resolves the cell list against the built-in app profiles:
    /// returns the distinct profiles plus, per cell in order, `(profile
    /// index, full SimConfig)`. Errors name the offending cell.
    pub fn resolve(&self) -> Result<ResolvedCells, String> {
        let mut base = self.budget.sim_config();
        if let Some(w) = self.warmup_uops {
            base.warmup_uops = w;
        }
        if let Some(m) = self.measure_uops {
            base.measure_uops = m;
        }
        if let Some(s) = self.seed {
            base.seed = s;
        }
        if let Some(sq) = &self.squash {
            base.squash = SquashConfig::parse(sq).map_err(|e| format!("squash: {e}"))?;
        }
        let mut profiles: Vec<AppProfile> = Vec::new();
        let mut resolved = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let idx = match profiles.iter().position(|p| p.name() == cell.app) {
                Some(i) => i,
                None => {
                    let p = AppProfile::by_name(&cell.app)
                        .map_err(|e| format!("unknown app {:?}: {e}", cell.app))?;
                    profiles.push(p);
                    profiles.len() - 1
                }
            };
            let policy = PolicyKind::parse(&cell.policy)
                .map_err(|e| format!("cell {}/{}: {e}", cell.app, cell.policy))?;
            resolved.push((idx, base.clone().with_sb(cell.sb).with_policy(policy)));
        }
        Ok((profiles, resolved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_round_trips_through_json() {
        let job = JobSpec {
            name: "unit".into(),
            budget: Budget::Quick,
            retry: 3,
            deadline_ms: Some(60_000),
            fault_rate_e4: 200,
            fault_seed: 7,
            warmup_uops: Some(2_000),
            measure_uops: Some(10_000),
            seed: Some(43),
            squash: Some("rate=0.05,depth=8..32,storm=4,seed=7".into()),
            cells: vec![CellSpec {
                app: "x264".into(),
                policy: "spb".into(),
                sb: 14,
            }],
        };
        let text = job.to_json().to_string();
        assert!(!text.contains('\n'), "wire form is one line: {text}");
        let back = JobSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, job);

        // Defaults fill in when optional knobs are absent.
        let min = JobSpec::new("m", Budget::Paper, job.cells.clone());
        let back = JobSpec::from_json(&Json::parse(&min.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, min);
        assert_eq!(back.retry, 1);
        assert_eq!(back.fault_rate_e4, 0);
    }

    #[test]
    fn parameterized_policies_survive_the_wire_and_split_cache_keys() {
        // A non-default parameterized spelling round-trips through the
        // wire spec and resolves to the policy it names.
        let job = JobSpec::new(
            "tuned",
            Budget::Quick,
            vec![
                CellSpec {
                    app: "x264".into(),
                    policy: "spb:n=32,dedupe=off,burst=3,frac=0.5".into(),
                    sb: 14,
                },
                CellSpec {
                    app: "x264".into(),
                    policy: "spb-feedback:n=24".into(),
                    sb: 14,
                },
            ],
        );
        let back = JobSpec::from_json(&Json::parse(&job.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, job);
        let (_, resolved) = back.resolve().unwrap();
        assert_eq!(resolved[0].1.policy.label(), "spb:n=32,dedupe=off,burst=3,frac=0.5");
        assert_eq!(resolved[1].1.policy.label(), "spb-feedback:n=24");

        // Configs differing only in the burst threshold must hash to
        // different cache keys, or the cache would serve one point the
        // other's results.
        let with_burst = |b: &str| {
            let cells = vec![CellSpec {
                app: "x264".into(),
                policy: format!("spb:burst={b}"),
                sb: 14,
            }];
            let job = JobSpec::new("k", Budget::Quick, cells);
            let (_, resolved) = job.resolve().unwrap();
            crate::cache::CacheKey::for_cell("x264", &resolved[0].1)
        };
        assert_ne!(with_burst("3"), with_burst("4"));

        // A typo'd spelling fails resolution with the grammar spelled out.
        let bad = JobSpec::new(
            "bad",
            Budget::Quick,
            vec![CellSpec {
                app: "x264".into(),
                policy: "spb:warp=9".into(),
                sb: 14,
            }],
        );
        let err = bad.resolve().unwrap_err();
        assert!(err.contains("n=1..1024"), "{err}");
    }

    #[test]
    fn squash_specs_survive_the_wire_and_split_cache_keys() {
        let cell = || CellSpec {
            app: "x264".into(),
            policy: "at-execute".into(),
            sb: 14,
        };
        let with_squash = |spec: &str| {
            let mut job = JobSpec::new("sq", Budget::Quick, vec![cell()]);
            job.squash = Some(spec.into());
            job
        };

        // The spec round-trips through the wire…
        let job = with_squash("rate=0.1,depth=8..32,storm=2,seed=5");
        let back = JobSpec::from_json(&Json::parse(&job.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, job);
        // …and resolves into every cell's SimConfig.
        let (_, resolved) = back.resolve().unwrap();
        assert!(resolved[0].1.squash.enabled());
        assert_eq!(
            resolved[0].1.squash,
            SquashConfig::parse("rate=0.1,depth=8..32,storm=2,seed=5").unwrap()
        );

        // Two jobs differing only in the squash *seed* must hash to
        // different cache keys, and a squash job must never collide
        // with the squash-less cell it wraps.
        let key = |job: &JobSpec| {
            let (_, resolved) = job.resolve().unwrap();
            crate::cache::CacheKey::for_cell("x264", &resolved[0].1)
        };
        let k1 = key(&with_squash("rate=0.1,depth=8..32,seed=1"));
        let k2 = key(&with_squash("rate=0.1,depth=8..32,seed=2"));
        let plain = key(&JobSpec::new("p", Budget::Quick, vec![cell()]));
        assert_ne!(k1, k2, "squash seed must split the cache key");
        assert_ne!(k1, plain, "squash cells must not reuse plain results");

        // A rate-0 spec disables the model and keeps the plain key, so
        // old cache entries stay valid.
        assert_eq!(key(&with_squash("rate=0,seed=9")), plain);

        // A malformed spec is rejected at submission time.
        let text = with_squash("rate=2").to_json().to_string();
        assert!(JobSpec::from_json(&Json::parse(&text).unwrap()).is_err());
    }

    #[test]
    fn quick_grid_matches_the_golden_shape() {
        let job = JobSpec::quick_grid();
        assert_eq!(job.cells.len(), 230, "23 apps × (1 ideal + 9 policy/sb)");
        assert_eq!(job.name, "sweep-grid-quick");
        assert_eq!(job.cells[0].policy, "ideal");
        let (profiles, resolved) = job.resolve().unwrap();
        assert_eq!(profiles.len(), 23);
        assert_eq!(resolved.len(), 230);
        // The first block is the ideal suite over all apps in order.
        assert_eq!(profiles[resolved[0].0].name(), job.cells[0].app);
    }

    #[test]
    fn resolve_rejects_unknown_apps_and_policies() {
        let mut job = JobSpec::quick_grid();
        job.cells[0].app = "not-a-benchmark".into();
        assert!(job.resolve().unwrap_err().contains("not-a-benchmark"));
        let mut job = JobSpec::quick_grid();
        job.cells[1].policy = "magic".into();
        assert!(job.resolve().unwrap_err().contains("magic"));
    }

    #[test]
    fn from_json_rejects_malformed_jobs() {
        for bad in [
            r#"{"cells":[]}"#,
            r#"{"name":"x","cells":[]}"#,
            r#"{"name":"x","budget":"warp","cells":[{"app":"a","policy":"p","sb":1}]}"#,
            r#"{"name":"x","cells":[{"app":"a"}]}"#,
        ] {
            assert!(
                JobSpec::from_json(&Json::parse(bad).unwrap()).is_err(),
                "must reject {bad}"
            );
        }
    }
}

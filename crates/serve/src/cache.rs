//! Persistent content-addressed result cache.
//!
//! Every completed cell is stored as one small JSON file keyed by the
//! cell's *content*: application, a digest of the full [`SimConfig`]
//! (policy, SB size, budgets, seed, kernel — everything that can change
//! the numbers), and the simulator code version. Identical cells in
//! later jobs — or after a crash-restart — are served from disk instead
//! of being re-simulated, and because the simulator is deterministic a
//! hit is bit-identical to a fresh run (modulo the non-reproducible
//! `wall_ms` host timing, which is cached as-measured).
//!
//! Robustness contract:
//!
//! - **Atomic writes**: entries are written to a same-directory tmp
//!   file and renamed into place, so a crash mid-store leaves either no
//!   entry or a complete one — never a torn file.
//! - **Per-entry checksums**: each entry embeds an FNV-1a digest of its
//!   canonical body; [`ResultCache::lookup`] re-derives it on read.
//! - **Corruption quarantine**: an unreadable, unparsable, mismatched
//!   or wrong-key entry is renamed to `<name>.quarantined` (kept for
//!   post-mortem) and reported as [`Lookup::Corrupt`] so the caller
//!   recomputes; the service counts these in its health stats.
//! - **Bounded growth**: an optional LRU bound on entry count and/or
//!   total bytes ([`ResultCache::with_entry_bound`],
//!   [`ResultCache::with_size_bound`]). Eviction removes whole entries,
//!   never edits them, so it can only turn a future hit into a miss —
//!   and a miss recomputes bit-identically (the simulator is
//!   deterministic). Lookups bump an entry's file mtime, which is the
//!   recency the evictor sorts by.

use crate::CODE_VERSION;
use spb_sim::config::SimConfig;
use spb_sim::sweep::SweepRecord;
use spb_stats::hash::{fnv1a64, hex16};
use spb_stats::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The content-addressed key of one cell result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Derives the key for `(app, cfg)` under the current
    /// [`CODE_VERSION`]. The config digest covers the `Debug` rendering
    /// of the *whole* [`SimConfig`] — any field that could change the
    /// simulated numbers changes the key.
    pub fn for_cell(app: &str, cfg: &SimConfig) -> Self {
        Self(fnv1a64(
            format!("{CODE_VERSION}|{app}|{cfg:?}").as_bytes(),
        ))
    }

    /// The entry's file name under the cache directory.
    pub fn file_name(&self) -> String {
        format!("{}.json", hex16(self.0))
    }

    /// The key as 16 lowercase hex digits (tuner provenance).
    pub fn hex(&self) -> String {
        hex16(self.0)
    }
}

/// The outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A validated entry: the cached record.
    Hit(SweepRecord),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed validation; it has been quarantined
    /// and the caller must recompute. The string says why.
    Corrupt(String),
}

/// A directory of checksummed, atomically-written cell results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    /// Evict least-recently-used entries past this count, if set.
    max_entries: Option<usize>,
    /// Evict least-recently-used entries past this total size, if set.
    max_bytes: Option<u64>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `dir`, unbounded.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            max_entries: None,
            max_bytes: None,
        })
    }

    /// Bounds the cache to at most `n` entries (LRU eviction on store).
    pub fn with_entry_bound(mut self, n: usize) -> Self {
        self.max_entries = Some(n);
        self
    }

    /// Bounds the cache to at most `bytes` of entry files (LRU eviction
    /// on store).
    pub fn with_size_bound(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// The canonical entry body: key provenance plus the record. The
    /// checksum is computed over this text.
    fn body_text(key: CacheKey, app: &str, record: &SweepRecord) -> String {
        let v = Json::obj([
            ("key", Json::str(hex16(key.0))),
            ("code_version", Json::str(CODE_VERSION)),
            ("app", Json::str(app)),
            ("record", record.to_json()),
        ]);
        format!("{v:#}\n")
    }

    /// Stores `record` under `key` with an embedded checksum, via a
    /// same-directory tmp file and an atomic rename.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a failed store leaves no partial
    /// entry behind.
    pub fn store(&self, key: CacheKey, app: &str, record: &SweepRecord) -> std::io::Result<()> {
        let body = Self::body_text(key, app, record);
        let v = Json::obj([
            ("body", Json::parse(&body).expect("body is valid json")),
            (
                "checksum",
                Json::str(format!("fnv1a64:{}", hex16(fnv1a64(body.as_bytes())))),
            ),
        ]);
        let path = self.entry_path(key);
        let tmp = self
            .dir
            .join(format!(".{}.tmp{}", key.file_name(), std::process::id()));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(format!("{v:#}\n").as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        // Best-effort: a failed eviction only leaves the cache larger
        // than asked, never corrupts an entry.
        self.enforce_bounds();
        Ok(())
    }

    /// Validates and returns the entry under `key`, quarantining it on
    /// any corruption.
    pub fn lookup(&self, key: CacheKey) -> Lookup {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            Err(e) => return self.quarantine(&path, format!("unreadable entry: {e}")),
        };
        match Self::validate(key, &text) {
            Ok(record) => {
                // Bump recency so the LRU evictor keeps hot entries.
                // Best-effort: a stale mtime only skews eviction order.
                if self.max_entries.is_some() || self.max_bytes.is_some() {
                    if let Ok(f) = std::fs::File::options().write(true).open(&path) {
                        let _ = f.set_modified(std::time::SystemTime::now());
                    }
                }
                Lookup::Hit(record)
            }
            Err(why) => self.quarantine(&path, why),
        }
    }

    fn validate(key: CacheKey, text: &str) -> Result<SweepRecord, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let body = v.get("body").ok_or("missing body")?;
        let stated = v
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or("missing checksum")?;
        let body_text = format!("{body:#}\n");
        let computed = format!("fnv1a64:{}", hex16(fnv1a64(body_text.as_bytes())));
        if stated != computed {
            return Err(format!(
                "checksum mismatch: entry says {stated}, content hashes to {computed}"
            ));
        }
        let entry_key = body.get("key").and_then(Json::as_str).unwrap_or("");
        if entry_key != hex16(key.0) {
            return Err(format!(
                "key mismatch: entry is for {entry_key}, looked up {}",
                hex16(key.0)
            ));
        }
        let version = body.get("code_version").and_then(Json::as_str).unwrap_or("");
        if version != CODE_VERSION {
            return Err(format!(
                "stale code version {version:?} (current {CODE_VERSION:?})"
            ));
        }
        SweepRecord::from_json(body.get("record").ok_or("missing record")?)
    }

    /// Live entries as `(path, mtime, bytes)`; excludes quarantined and
    /// in-flight tmp files (both fail the `*.json`, non-dot filter).
    fn live_entries(&self) -> Vec<(PathBuf, std::time::SystemTime, u64)> {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        rd.filter_map(Result::ok)
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.ends_with(".json") && !name.starts_with('.')
            })
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((e.path(), mtime, meta.len()))
            })
            .collect()
    }

    /// The number of live (non-quarantined) entries on disk.
    pub fn entry_count(&self) -> usize {
        self.live_entries().len()
    }

    /// Deletes least-recently-used entries until the configured bounds
    /// hold. Whole-entry deletion only: an evicted key becomes a clean
    /// [`Lookup::Miss`] whose recompute is bit-identical, so eviction
    /// can never corrupt a result.
    fn enforce_bounds(&self) {
        if self.max_entries.is_none() && self.max_bytes.is_none() {
            return;
        }
        let mut entries = self.live_entries();
        entries.sort_by_key(|&(_, mtime, _)| mtime);
        let mut count = entries.len();
        let mut bytes: u64 = entries.iter().map(|&(_, _, len)| len).sum();
        for (path, _, len) in entries {
            let over_count = self.max_entries.is_some_and(|m| count > m);
            let over_bytes = self.max_bytes.is_some_and(|m| bytes > m);
            if !over_count && !over_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                count -= 1;
                bytes = bytes.saturating_sub(len);
            }
        }
    }

    /// Moves a bad entry aside (never deletes evidence) and reports the
    /// reason. If even the rename fails the entry is left in place; the
    /// caller still recomputes.
    fn quarantine(&self, path: &Path, why: String) -> Lookup {
        let mut q = path.as_os_str().to_owned();
        q.push(".quarantined");
        let _ = std::fs::rename(path, PathBuf::from(q));
        Lookup::Corrupt(why)
    }

    /// The number of quarantined entries currently on disk.
    pub fn quarantined_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name()
                            .to_string_lossy()
                            .ends_with(".quarantined")
                    })
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_sim::config::PolicyKind;

    fn record() -> SweepRecord {
        SweepRecord {
            app: "x264".into(),
            policy: "spb".into(),
            sb: 14,
            cycles: 123_456,
            uops: 300_000,
            ipc: 300_000.0 / 123_456.0,
            wall_ms: 10.5,
            energy_nj: Some(4321.25),
            coh_msgs: Some(99),
        }
    }

    fn tmp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("spb-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = tmp_cache("roundtrip");
        let cfg = SimConfig::quick().with_sb(14).with_policy(PolicyKind::spb_default());
        let key = CacheKey::for_cell("x264", &cfg);
        assert_eq!(cache.lookup(key), Lookup::Miss);
        cache.store(key, "x264", &record()).unwrap();
        assert_eq!(cache.lookup(key), Lookup::Hit(record()));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn keys_separate_configs_and_apps() {
        let base = SimConfig::quick();
        let k = |app: &str, cfg: &SimConfig| CacheKey::for_cell(app, cfg);
        assert_ne!(k("x264", &base), k("lbm", &base));
        assert_ne!(k("x264", &base), k("x264", &base.clone().with_sb(14)));
        let mut seeded = base.clone();
        seeded.seed = 43;
        assert_ne!(k("x264", &base), k("x264", &seeded));
    }

    #[test]
    fn flipped_bytes_are_detected_and_quarantined() {
        let cache = tmp_cache("flip");
        let cfg = SimConfig::quick();
        let key = CacheKey::for_cell("x264", &cfg);
        cache.store(key, "x264", &record()).unwrap();
        let path = cache.dir().join(key.file_name());
        // Flip a digit inside the cycle count: still valid JSON.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("123456", "123457", 1)).unwrap();
        match cache.lookup(key) {
            Lookup::Corrupt(why) => assert!(why.contains("checksum"), "why: {why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The bad entry is quarantined, not deleted; the slot now misses.
        assert_eq!(cache.quarantined_count(), 1);
        assert_eq!(cache.lookup(key), Lookup::Miss);
        // Recompute-and-store heals the slot.
        cache.store(key, "x264", &record()).unwrap();
        assert_eq!(cache.lookup(key), Lookup::Hit(record()));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncated_and_garbage_entries_quarantine() {
        let cache = tmp_cache("garbage");
        let cfg = SimConfig::quick();
        let key = CacheKey::for_cell("lbm", &cfg);
        cache.store(key, "lbm", &record()).unwrap();
        let path = cache.dir().join(key.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(cache.lookup(key), Lookup::Corrupt(_)));
        std::fs::write(cache.dir().join(key.file_name()), "not json at all").unwrap();
        assert!(matches!(cache.lookup(key), Lookup::Corrupt(_)));
        assert_eq!(cache.quarantined_count(), 1, "second quarantine overwrote");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn lru_eviction_bounds_entries_and_recompute_is_bit_identical() {
        use std::time::{Duration, SystemTime};
        let cache = tmp_cache("lru").with_entry_bound(4);
        let apps = ["a", "b", "c", "d", "e", "f"];
        let keys: Vec<CacheKey> = apps
            .iter()
            .map(|app| CacheKey::for_cell(app, &SimConfig::quick()))
            .collect();
        // Store the first four with explicit, strictly increasing
        // mtimes so LRU order is deterministic regardless of clock
        // granularity: a oldest ... d newest.
        let base = SystemTime::now() - Duration::from_secs(3600);
        for (i, (app, key)) in apps.iter().zip(&keys).take(4).enumerate() {
            cache.store(*key, app, &record()).unwrap();
            let f = std::fs::File::options()
                .write(true)
                .open(cache.dir().join(key.file_name()))
                .unwrap();
            f.set_modified(base + Duration::from_secs(i as u64)).unwrap();
        }
        assert_eq!(cache.entry_count(), 4);
        // A lookup refreshes "a"'s recency, so it must survive the
        // coming evictions while the untouched "b" does not.
        assert!(matches!(cache.lookup(keys[0]), Lookup::Hit(_)));
        cache.store(keys[4], "e", &record()).unwrap();
        cache.store(keys[5], "f", &record()).unwrap();
        assert_eq!(cache.entry_count(), 4, "bound enforced after stores");
        assert!(
            matches!(cache.lookup(keys[0]), Lookup::Hit(_)),
            "recently-used entry survived eviction"
        );
        assert_eq!(cache.lookup(keys[1]), Lookup::Miss, "LRU entry evicted");
        // Eviction never corrupts: recomputing the evicted cell and
        // re-storing yields a bit-identical hit.
        cache.store(keys[1], "b", &record()).unwrap();
        assert_eq!(cache.lookup(keys[1]), Lookup::Hit(record()));
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn size_bound_evicts_and_spares_quarantined_evidence() {
        // Seed and quarantine through an unbounded handle so the bound
        // cannot evict the entry before the corruption check sees it.
        let unbounded = tmp_cache("sizebound");
        let cache = unbounded.clone().with_size_bound(1);
        let cfg = SimConfig::quick();
        let key_a = CacheKey::for_cell("a", &cfg);
        let key_b = CacheKey::for_cell("b", &cfg);
        unbounded.store(key_a, "a", &record()).unwrap();
        // Corrupt and quarantine "a"'s entry: quarantined files are
        // evidence, not cache entries — the evictor must not count or
        // delete them.
        let path = cache.dir().join(key_a.file_name());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("123456", "999999", 1)).unwrap();
        assert!(matches!(cache.lookup(key_a), Lookup::Corrupt(_)));
        assert_eq!(cache.quarantined_count(), 1);
        // Every store now exceeds the 1-byte bound, so the cache keeps
        // evicting down to nothing — but the quarantined file stays.
        cache.store(key_b, "b", &record()).unwrap();
        assert_eq!(cache.entry_count(), 0, "size bound evicts everything");
        assert_eq!(cache.quarantined_count(), 1, "evidence untouched");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn wrong_key_entries_quarantine() {
        let cache = tmp_cache("wrongkey");
        let cfg = SimConfig::quick();
        let key_a = CacheKey::for_cell("x264", &cfg);
        let key_b = CacheKey::for_cell("lbm", &cfg);
        cache.store(key_a, "x264", &record()).unwrap();
        // Simulate a mis-filed entry: key_a's content under key_b's name.
        std::fs::copy(
            cache.dir().join(key_a.file_name()),
            cache.dir().join(key_b.file_name()),
        )
        .unwrap();
        match cache.lookup(key_b) {
            Lookup::Corrupt(why) => assert!(why.contains("key mismatch"), "why: {why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}

//! Write-ahead job journal: crash recovery for the sweep service.
//!
//! The cache makes individual cell results durable; the journal makes
//! *jobs* durable. Before a job is enqueued the server appends an
//! `accepted` record; when its report has been computed (and every cell
//! stored in the cache) it appends a `done` record. A server killed
//! mid-sweep — `kill -9`, power loss — replays the journal on restart:
//! every `accepted` without a matching `done` is requeued, and because
//! finished cells are already in the cache only the missing cells are
//! actually re-simulated.
//!
//! On-disk format: one record per line, `<hex16 checksum> <json>`,
//! where the checksum is FNV-1a over the JSON text. Appends go through
//! a single `write` of the full line, so a torn tail (the crash hit
//! mid-append) is at most one line; [`Journal::open`] quarantines any
//! line that fails its checksum — preserving it in `<journal>.corrupt`
//! for post-mortem — and keeps going, so one mangled line never takes
//! down recovery of the rest.

use crate::spec::JobSpec;
use spb_stats::hash::{fnv1a64, hex16};
use spb_stats::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What a replay of the journal found.
#[derive(Debug)]
pub struct Recovery {
    /// Jobs accepted but never marked done, in acceptance order.
    pub pending: Vec<(String, JobSpec)>,
    /// Lines that failed their checksum or did not parse (quarantined
    /// to `<journal>.corrupt`).
    pub corrupt_lines: usize,
    /// Total valid records replayed.
    pub replayed: usize,
}

/// An append-only, checksummed write-ahead log of job lifecycles.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` and replays it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors opening or reading the file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Self, Recovery)> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let existing = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let recovery = Self::replay(&path, &existing);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        // A crash mid-append can leave a torn tail with no trailing
        // newline; start a fresh line so the next record never merges
        // into the fragment.
        if !existing.is_empty() && !existing.ends_with('\n') {
            file.write_all(b"\n")?;
        }
        Ok((Self { path, file }, recovery))
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn replay(path: &Path, text: &str) -> Recovery {
        let mut pending: Vec<(String, JobSpec)> = Vec::new();
        let mut corrupt = Vec::new();
        let mut replayed = 0;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match Self::decode(line) {
                Some(record) => {
                    replayed += 1;
                    let event = record.get("event").and_then(Json::as_str).unwrap_or("");
                    let job_id = record
                        .get("job_id")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string();
                    match event {
                        "accepted" => {
                            if let Some(job) =
                                record.get("job").and_then(|j| JobSpec::from_json(j).ok())
                            {
                                pending.push((job_id, job));
                            } else {
                                corrupt.push(line.to_string());
                            }
                        }
                        "done" => pending.retain(|(id, _)| *id != job_id),
                        _ => corrupt.push(line.to_string()),
                    }
                }
                None => corrupt.push(line.to_string()),
            }
        }
        let corrupt_lines = corrupt.len();
        if corrupt_lines > 0 {
            // Preserve the evidence next to the journal; appends below
            // accumulate across restarts.
            let mut q = path.as_os_str().to_owned();
            q.push(".corrupt");
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(PathBuf::from(q))
            {
                for line in &corrupt {
                    let _ = writeln!(f, "{line}");
                }
            }
        }
        Recovery {
            pending,
            corrupt_lines,
            replayed,
        }
    }

    /// Decodes one `<hex16> <json>` line, `None` if the checksum or the
    /// JSON does not hold up.
    fn decode(line: &str) -> Option<Json> {
        let (stated, body) = line.split_once(' ')?;
        if stated != hex16(fnv1a64(body.as_bytes())) {
            return None;
        }
        Json::parse(body).ok()
    }

    fn append(&mut self, record: Json) -> std::io::Result<()> {
        let body = record.to_string();
        debug_assert!(!body.contains('\n'), "journal records are one line");
        let line = format!("{} {}\n", hex16(fnv1a64(body.as_bytes())), body);
        // One write call for the whole line keeps torn tails to a
        // single trailing fragment, which replay tolerates.
        self.file.write_all(line.as_bytes())?;
        self.file.sync_all()
    }

    /// A stable id for `job` (its content digest — resubmitting the
    /// identical job reuses the id, which is harmless: `done` clears
    /// every matching `accepted`).
    pub fn job_id(job: &JobSpec) -> String {
        hex16(fnv1a64(job.to_json().to_string().as_bytes()))
    }

    /// Records that `job` has been accepted into the queue.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat a journal write
    /// failure as a rejected job (never silently unjournaled work).
    pub fn accepted(&mut self, job_id: &str, job: &JobSpec) -> std::io::Result<()> {
        self.append(Json::obj([
            ("event", Json::str("accepted")),
            ("job_id", Json::str(job_id)),
            ("job", job.to_json()),
        ]))
    }

    /// Records that the job's report has been computed and cached.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn done(&mut self, job_id: &str) -> std::io::Result<()> {
        self.append(Json::obj([
            ("event", Json::str("done")),
            ("job_id", Json::str(job_id)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Budget;
    use crate::spec::CellSpec;

    fn job(name: &str) -> JobSpec {
        JobSpec::new(
            name,
            Budget::Quick,
            vec![CellSpec {
                app: "x264".into(),
                policy: "spb".into(),
                sb: 14,
            }],
        )
    }

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spb-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("journal.waj")
    }

    #[test]
    fn done_jobs_do_not_reappear_and_pending_jobs_do() {
        let path = tmp_path("pending");
        {
            let (mut j, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.replayed, 0);
            let a = job("a");
            let b = job("b");
            j.accepted(&Journal::job_id(&a), &a).unwrap();
            j.accepted(&Journal::job_id(&b), &b).unwrap();
            j.done(&Journal::job_id(&a)).unwrap();
        }
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.replayed, 3);
        assert_eq!(rec.corrupt_lines, 0);
        assert_eq!(rec.pending.len(), 1);
        assert_eq!(rec.pending[0].1.name, "b");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_and_flipped_bytes_are_tolerated_and_quarantined() {
        let path = tmp_path("torn");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            let a = job("a");
            let b = job("b");
            j.accepted(&Journal::job_id(&a), &a).unwrap();
            j.accepted(&Journal::job_id(&b), &b).unwrap();
        }
        // Flip a byte in line 1 and tear line 2 mid-record.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!(
            "{}\n{}",
            lines[0].replacen("accepted", "acceptXd", 1),
            &lines[1][..lines[1].len() / 2]
        );
        std::fs::write(&path, mangled).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.pending.len(), 0, "nothing valid survives");
        assert_eq!(rec.corrupt_lines, 2);
        let quarantine = std::fs::read_to_string(format!("{}.corrupt", path.display())).unwrap();
        assert_eq!(quarantine.lines().count(), 2);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn job_ids_are_stable_content_digests() {
        assert_eq!(Journal::job_id(&job("a")), Journal::job_id(&job("a")));
        assert_ne!(Journal::job_id(&job("a")), Journal::job_id(&job("b")));
    }
}

//! End-to-end service tests over a real TCP socket: submit/receive,
//! cache hits on resubmission, journal recovery, injected-fault
//! convergence, and explicit overload shedding.

use spb_serve::{client, Budget, CellSpec, JobSpec, ServeConfig, Server};
use spb_stats::json::Json;
use std::path::PathBuf;

/// A fresh state directory per test (and per process, so parallel test
/// binaries never collide).
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spb-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds a server on an ephemeral port and serves it on a background
/// thread. Returns the address; the thread exits on `shutdown`.
fn spawn_server(cfg: ServeConfig) -> String {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.addr().expect("addr").to_string();
    std::thread::spawn(move || server.serve().expect("serve"));
    addr
}

/// A tiny-budget job over a few distinct cells: fast even in debug
/// builds, deterministic like everything else.
fn tiny_job(name: &str) -> JobSpec {
    let cells = [("x264", "spb", 14), ("x264", "at-commit", 28), ("lbm", "ideal", 56)]
        .iter()
        .map(|&(app, policy, sb)| CellSpec {
            app: app.into(),
            policy: policy.into(),
            sb,
        })
        .collect();
    let mut job = JobSpec::new(name, Budget::Quick, cells);
    job.warmup_uops = Some(2_000);
    job.measure_uops = Some(10_000);
    job
}

fn stat(reply: &Json, key: &str) -> u64 {
    reply
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("reply missing stats.{key}: {reply}"))
}

fn records(reply: &Json) -> Vec<Json> {
    reply
        .get("report")
        .and_then(|r| r.get("records"))
        .and_then(Json::as_arr)
        .expect("reply carries report.records")
        .to_vec()
}

#[test]
fn submit_computes_then_resubmission_hits_the_cache() {
    let dir = state_dir("roundtrip");
    let addr = spawn_server(ServeConfig::at(&dir));

    let job = tiny_job("roundtrip");
    let first = client::submit(&addr, &job).expect("first submission");
    assert_eq!(stat(&first, "computed"), 3);
    assert_eq!(stat(&first, "cache_hits"), 0);
    assert_eq!(stat(&first, "failed"), 0);
    let first_records = records(&first);
    assert_eq!(first_records.len(), 3);
    // Records come back in request order.
    assert_eq!(
        first_records[0].get("policy").and_then(Json::as_str),
        Some("spb")
    );

    // The identical job is served entirely from the cache, and the
    // simulated numbers are bit-identical (wall_ms is host timing).
    let second = client::submit(&addr, &job).expect("second submission");
    assert_eq!(stat(&second, "computed"), 0);
    assert_eq!(stat(&second, "cache_hits"), 3);
    for (a, b) in first_records.iter().zip(records(&second)) {
        for key in ["app", "policy", "sb", "cycles", "uops", "ipc"] {
            assert_eq!(a.get(key), b.get(key), "field {key} differs");
        }
    }

    // Health reflects the life of the service so far.
    let health = client::health(&addr).expect("health");
    let counters = health
        .get("metrics")
        .and_then(|m| m.get("serve"))
        .and_then(|c| c.get("counters"))
        .cloned()
        .expect("health carries serve counters");
    assert_eq!(counters.get("jobs_completed").and_then(Json::as_u64), Some(2));
    assert_eq!(counters.get("cells_computed").and_then(Json::as_u64), Some(3));
    assert_eq!(counters.get("cache_hits").and_then(Json::as_u64), Some(3));

    client::shutdown(&addr).expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journaled_jobs_recover_across_a_restart() {
    let dir = state_dir("recover");
    let job = tiny_job("recover");

    // First life: accept the job into the journal but "crash" (drop the
    // server without serving) before it runs.
    {
        let server = Server::bind(ServeConfig::at(&dir)).expect("bind");
        let _ = server.addr();
        // Reach into the same journal file the server uses: simulate a
        // client whose accepted job never completed.
        drop(server);
        let (mut journal, recovery) =
            spb_serve::Journal::open(dir.join("journal.waj")).expect("journal");
        assert_eq!(recovery.pending.len(), 0);
        journal
            .accepted(&spb_serve::Journal::job_id(&job), &job)
            .expect("journal accept");
    }

    // Second life: the recovered job runs before any client connects.
    let addr = spawn_server(ServeConfig::at(&dir));
    // Poll health until the recovered job has been computed.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let health = client::health(&addr).expect("health");
        let counters = health
            .get("metrics")
            .and_then(|m| m.get("serve"))
            .and_then(|c| c.get("counters"))
            .cloned()
            .expect("serve counters");
        assert_eq!(
            counters.get("jobs_recovered").and_then(Json::as_u64),
            Some(1),
            "the journaled job was requeued on restart"
        );
        if counters.get("jobs_completed").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "recovered job never completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // A client submitting the same job now gets pure cache hits: only
    // the missing cells (none) were recomputed.
    let reply = client::submit(&addr, &job).expect("submit after recovery");
    assert_eq!(stat(&reply, "cache_hits"), 3);
    assert_eq!(stat(&reply, "computed"), 0);

    client::shutdown(&addr).expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_faults_converge_with_zero_lost_cells() {
    let dir = state_dir("chaos");
    let addr = spawn_server(ServeConfig::at(&dir));

    // The acceptance rate (0.02) plus a heavier rate that guarantees
    // the retry path is exercised; both must lose zero cells and report
    // zero invariant violations.
    let mut baseline = None;
    for (tag, rate, retry) in [("acceptance", 200, 3), ("heavy", 4_000, 10)] {
        let fresh = state_dir(&format!("chaos-{tag}"));
        let addr = if tag == "acceptance" {
            addr.clone()
        } else {
            spawn_server(ServeConfig::at(&fresh))
        };
        let mut job = tiny_job("chaos");
        job.fault_rate_e4 = rate;
        job.fault_seed = 7;
        job.retry = retry;
        let reply = client::submit(&addr, &job).expect("chaos submission");
        assert_eq!(stat(&reply, "failed"), 0, "{tag}: zero lost cells");
        assert_eq!(stat(&reply, "computed"), 3, "{tag}: every cell computed");
        let recs = records(&reply);
        assert_eq!(recs.len(), 3);
        // Chaos never perturbs simulated numbers: both servers agree
        // bit-for-bit.
        let numbers: Vec<_> = recs
            .iter()
            .map(|r| {
                (
                    r.get("cycles").cloned(),
                    r.get("uops").cloned(),
                    r.get("ipc").cloned(),
                )
            })
            .collect();
        match &baseline {
            None => baseline = Some(numbers),
            Some(b) => assert_eq!(&numbers, b, "{tag}: results drift under chaos"),
        }
        if tag == "heavy" {
            client::shutdown(&addr).expect("shutdown heavy");
            let _ = std::fs::remove_dir_all(&fresh);
        }
    }

    client::shutdown(&addr).expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_an_explicit_rejection_never_a_hang() {
    let dir = state_dir("overload");
    let mut cfg = ServeConfig::at(&dir);
    cfg.queue_limit = 0; // everything sheds
    let addr = spawn_server(cfg);

    let started = std::time::Instant::now();
    let err = client::submit(&addr, &tiny_job("shed")).expect_err("must shed");
    assert!(err.contains("overloaded"), "err: {err}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "rejection must be immediate, not a hang"
    );

    // The shed is visible in health, and the server still answers.
    let health = client::health(&addr).expect("health after shed");
    let shed = health
        .get("metrics")
        .and_then(|m| m.get("serve"))
        .and_then(|c| c.get("counters"))
        .and_then(|c| c.get("jobs_shed"))
        .and_then(Json::as_u64);
    assert_eq!(shed, Some(1));

    client::shutdown(&addr).expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_explicit_errors() {
    let dir = state_dir("badreq");
    let addr = spawn_server(ServeConfig::at(&dir));

    let err = client::request(&addr, &Json::obj([("type", Json::str("warp"))]))
        .expect_err("unknown type");
    assert!(err.contains("unknown request type"), "err: {err}");

    let err = client::request(&addr, &Json::obj([("type", Json::str("sweep"))]))
        .expect_err("missing job");
    assert!(err.contains("job"), "err: {err}");

    let mut bad = tiny_job("bad");
    bad.cells[0].app = "not-a-benchmark".into();
    let err = client::submit(&addr, &bad).expect_err("unknown app");
    assert!(err.contains("not-a-benchmark"), "err: {err}");

    client::shutdown(&addr).expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

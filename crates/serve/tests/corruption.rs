//! Cache- and journal-corruption recovery, end to end: flip bytes on
//! disk between server lives, then verify detection, quarantine,
//! recompute, and a final grid bit-identical to the uncached run.

use spb_serve::{client, Budget, CellSpec, JobSpec, ServeConfig, Server};
use spb_stats::json::Json;
use std::path::{Path, PathBuf};

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spb-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(cfg: ServeConfig) -> String {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.addr().expect("addr").to_string();
    std::thread::spawn(move || server.serve().expect("serve"));
    addr
}

fn tiny_job(name: &str) -> JobSpec {
    let cells = [("x264", "spb", 14), ("lbm", "at-commit", 28), ("gcc", "ideal", 56)]
        .iter()
        .map(|&(app, policy, sb)| CellSpec {
            app: app.into(),
            policy: policy.into(),
            sb,
        })
        .collect();
    let mut job = JobSpec::new(name, Budget::Quick, cells);
    job.warmup_uops = Some(2_000);
    job.measure_uops = Some(10_000);
    job
}

fn stat(reply: &Json, key: &str) -> u64 {
    reply
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("reply missing stats.{key}: {reply}"))
}

/// The simulated fields of every record, in order (everything except
/// the host-timing `wall_ms`).
fn grid_numbers(reply: &Json) -> Vec<Vec<Json>> {
    reply
        .get("report")
        .and_then(|r| r.get("records"))
        .and_then(Json::as_arr)
        .expect("report.records")
        .iter()
        .map(|r| {
            ["app", "policy", "sb", "cycles", "uops", "ipc"]
                .iter()
                .map(|k| r.get(k).cloned().expect("record field"))
                .collect()
        })
        .collect()
}

/// Flips one byte inside every cache entry's cycle digits — valid JSON,
/// wrong content — so only the checksum can catch it.
fn corrupt_cache_entries(cache_dir: &Path) -> usize {
    let mut corrupted = 0;
    for entry in std::fs::read_dir(cache_dir).expect("cache dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read entry");
        let mangled: String = {
            // Find the cycles value and nudge its first digit.
            let needle = "\"cycles\": ";
            let at = text.find(needle).expect("entry has cycles") + needle.len();
            let mut bytes = text.into_bytes();
            bytes[at] = if bytes[at] == b'9' { b'8' } else { b'9' };
            String::from_utf8(bytes).expect("still utf-8")
        };
        std::fs::write(&path, mangled).expect("write mangled entry");
        corrupted += 1;
    }
    corrupted
}

#[test]
fn corrupted_cache_and_journal_recover_to_a_bit_identical_grid() {
    let dir = state_dir("e2e");
    let job = tiny_job("corruption-grid");

    // Life 1: compute the grid uncached; this is the reference.
    let addr = spawn_server(ServeConfig::at(&dir));
    let reference = client::submit(&addr, &job).expect("reference run");
    assert_eq!(stat(&reference, "computed"), 3);
    client::shutdown(&addr).expect("shutdown life 1");

    // Sabotage, part 1: flip a byte in every cached entry.
    let flipped = corrupt_cache_entries(&dir.join("cache"));
    assert_eq!(flipped, 3, "every cell was cached");
    // Sabotage, part 2: mangle the journal's first line and tear the
    // last one mid-record.
    let journal_path = dir.join("journal.waj");
    let text = std::fs::read_to_string(&journal_path).expect("journal");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "journal holds accepted + done");
    let mut mangled: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
    mangled[0] = mangled[0].replacen("accepted", "acceptXd", 1);
    let last = mangled.last_mut().expect("non-empty");
    last.truncate(last.len() / 2);
    std::fs::write(&journal_path, mangled.join("\n")).expect("write mangled journal");

    // Life 2: the server comes back up despite the mangled journal…
    let addr = spawn_server(ServeConfig::at(&dir));
    let health = client::health(&addr).expect("health");
    let counters = health
        .get("metrics")
        .and_then(|m| m.get("serve"))
        .and_then(|c| c.get("counters"))
        .cloned()
        .expect("serve counters");
    assert!(
        counters
            .get("journal_corrupt_lines")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2,
        "mangled journal lines were detected: {counters}"
    );
    // …and the quarantine file preserves the evidence.
    let quarantined = std::fs::read_to_string(format!("{}.corrupt", journal_path.display()))
        .expect("journal quarantine file");
    assert!(quarantined.contains("acceptXd"));

    // Resubmitting detects every corrupted entry, quarantines it, and
    // recomputes: zero cache hits, full recompute.
    let recovered = client::submit(&addr, &job).expect("recovery run");
    assert_eq!(stat(&recovered, "cache_corrupt"), 3, "all flips detected");
    assert_eq!(stat(&recovered, "cache_hits"), 0);
    assert_eq!(stat(&recovered, "computed"), 3);
    assert_eq!(stat(&recovered, "failed"), 0);

    // The recomputed grid is bit-identical to the uncached reference.
    assert_eq!(grid_numbers(&recovered), grid_numbers(&reference));

    // Quarantined entries are preserved on disk for post-mortem, and
    // the healed cache serves hits again.
    let quarantined_entries = std::fs::read_dir(dir.join("cache"))
        .expect("cache dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".quarantined"))
        .count();
    assert_eq!(quarantined_entries, 3);
    let healed = client::submit(&addr, &job).expect("healed run");
    assert_eq!(stat(&healed, "cache_hits"), 3);
    assert_eq!(stat(&healed, "computed"), 0);
    assert_eq!(grid_numbers(&healed), grid_numbers(&reference));

    client::shutdown(&addr).expect("shutdown life 2");
    let _ = std::fs::remove_dir_all(&dir);
}

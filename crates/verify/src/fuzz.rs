//! A seeded coherence interleaving fuzzer for [`spb_mem::MemorySystem`].
//!
//! The fuzzer bypasses the CPU model entirely and drives the memory
//! system's public API — loads, store drains, RFO prefetches from every
//! origin, SPB page bursts, and time advances — in a pseudo-random but
//! fully deterministic interleaving derived from a single seed. A pool
//! of *shared* blocks (fought over by every core) and *private* blocks
//! (per core) steers the schedule toward the interesting coherence
//! traffic: invalidations, ownership downgrades, remote forwards, and
//! racing RFOs.
//!
//! Time itself is fuzzed through a [`spb_sim::scheduler::TimingWheel`]:
//! steps register the memory system's own contractual wakeup
//! ([`spb_mem::MemorySystem::wake_at`]) alongside a decoy source,
//! cancel registrations at random, and fire due wakeups **late** by a
//! small skew before ticking. Firing early is sound by design; firing
//! late breaks bit-identity with the reference kernels but must never
//! break coherence — which is exactly what the after-every-step checker
//! establishes. The wheel is also audited after each firing: a due
//! wakeup it failed to consume is reported as a failure.
//!
//! After **every** step the full coherence invariant checker runs
//! ([`spb_mem::MemorySystem::check_invariants`]), and a thorough sweep
//! ([`spb_mem::MemorySystem::check_invariants_thorough`]) closes the
//! run. A bounded [`FaultConfig`] can be layered on top, and
//! [`FuzzConfig::mutate_at`] arms a test-only "lost directory owner"
//! protocol mutation mid-run to prove the checker actually bites.
//!
//! Failures are deterministic: a [`FuzzFailure`] carries the seed and
//! step, [`minimize`] shrinks the schedule to (near-)minimal length,
//! and `spbsim verify fuzz --seed N --steps M` replays it exactly.

use spb_mem::{FaultConfig, MemoryConfig, MemorySystem, RfoOrigin};
use spb_sim::scheduler::{TimingWheel, NEAR_SLOTS};
use std::fmt;

/// Blocks in the contended pool that every core touches.
const SHARED_BLOCKS: u64 = 24;
/// Private blocks per core.
const PRIVATE_BLOCKS: u64 = 24;
/// Base block of the shared pool (arbitrary, away from zero).
const SHARED_BASE: u64 = 0x4000;
/// Base block of core `c`'s private pool: `PRIVATE_BASE + c * 0x1000`.
const PRIVATE_BASE: u64 = 0x8000;
/// Wheel source id for the memory system's contractual wakeup.
const MEM_ID: usize = 0;
/// Wheel source id for the decoy registration (register/cancel churn).
const DECOY_ID: usize = 1;

/// One fuzzing schedule, fully determined by its fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Seed for the action/operand stream.
    pub seed: u64,
    /// Number of scheduler steps.
    pub steps: u32,
    /// Cores in the memory system.
    pub cores: usize,
    /// Uniform fault rate in 1e-4 units (0 disables fault injection;
    /// e.g. `250` = 2.5 % per fault site). Kept integral so the config
    /// stays `Eq` and bit-replayable.
    pub fault_rate_e4: u32,
    /// Arm the test-only "lost directory owner" protocol mutation at
    /// this step, if set. Kept as an absolute step (not a fraction of
    /// `steps`) so that shrinking the schedule replays the same prefix.
    pub mutate_at: Option<u32>,
    /// Mix wrong-path speculation into the schedule: spec-tagged RFO
    /// runs, speculative page bursts, and squash resolutions that can
    /// land mid-drain or mid-burst.
    pub squash: bool,
    /// Arm the test-only "forgot to untag a speculative line" mutation
    /// at this step, if set (needs `squash` to have tagged something).
    pub spec_mutate_at: Option<u32>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            steps: 2_048,
            cores: 4,
            fault_rate_e4: 0,
            mutate_at: None,
            squash: false,
            spec_mutate_at: None,
        }
    }
}

impl FuzzConfig {
    /// The exact CLI invocation that replays this schedule.
    pub fn repro(&self) -> String {
        let mut s = format!(
            "spbsim verify fuzz --seed {} --steps {} --cores {}",
            self.seed, self.steps, self.cores
        );
        if self.fault_rate_e4 > 0 {
            s.push_str(&format!(" --fault-rate-e4 {}", self.fault_rate_e4));
        }
        if let Some(at) = self.mutate_at {
            s.push_str(&format!(" --mutate-at {at}"));
        }
        if self.squash {
            s.push_str(" --squash");
        }
        if let Some(at) = self.spec_mutate_at {
            s.push_str(&format!(" --spec-mutate-at {at}"));
        }
        s
    }
}

/// Counters for one completed (violation-free) fuzz run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Steps executed.
    pub steps: u32,
    /// Demand loads issued.
    pub loads: u64,
    /// Store drains attempted.
    pub drains: u64,
    /// RFO prefetches issued (all origins).
    pub prefetches: u64,
    /// Page bursts enqueued.
    pub bursts: u64,
    /// Cycles advanced.
    pub cycles: u64,
    /// Timing-wheel wakeups fired (possibly with late skew).
    pub wakeups: u64,
    /// Wrong-path (spec-tagged) RFO prefetches issued.
    pub spec_prefetches: u64,
    /// Squash resolutions attributed.
    pub squashes: u64,
}

impl FuzzStats {
    /// Merge another run's counters into this one.
    pub fn absorb(&mut self, other: &FuzzStats) {
        self.steps += other.steps;
        self.loads += other.loads;
        self.drains += other.drains;
        self.prefetches += other.prefetches;
        self.bursts += other.bursts;
        self.cycles += other.cycles;
        self.wakeups += other.wakeups;
        self.spec_prefetches += other.spec_prefetches;
        self.squashes += other.squashes;
    }
}

/// A coherence invariant violation found by the fuzzer, with everything
/// needed to replay it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The schedule that failed.
    pub config: FuzzConfig,
    /// Step at which the violation was detected (== `config.steps` when
    /// only the closing thorough sweep caught it).
    pub step: u32,
    /// Human-readable violation report from the checker.
    pub violation: String,
    /// Smallest failing step count found by [`minimize`], if it ran.
    pub minimized_steps: Option<u32>,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coherence violation at step {} of seed {:#x}:",
            self.step, self.config.seed
        )?;
        writeln!(f, "  {}", self.violation)?;
        if let Some(n) = self.minimized_steps {
            let short = FuzzConfig {
                steps: n,
                ..self.config
            };
            writeln!(f, "  minimized to {n} steps")?;
            writeln!(f, "  replay: {}", short.repro())?;
        } else {
            writeln!(f, "  replay: {}", self.config.repro())?;
        }
        Ok(())
    }
}

impl std::error::Error for FuzzFailure {}

/// splitmix64 — the same generator family the fault plan uses, seeded
/// independently per run.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635_16f9_a3c1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Runs one fuzzing schedule to completion.
///
/// # Errors
///
/// Returns a [`FuzzFailure`] (without minimization — see [`minimize`])
/// if any step trips the coherence invariant checker, if the memory
/// system's own periodic checker latched a violation, or if the closing
/// thorough sweep fails.
///
/// # Panics
///
/// Panics if `config.cores` is zero.
pub fn run_one(config: &FuzzConfig) -> Result<FuzzStats, Box<FuzzFailure>> {
    assert!(config.cores > 0, "fuzzing needs at least one core");
    let mem_cfg = MemoryConfig {
        cores: config.cores,
        // The schedule checks invariants after every step itself; the
        // periodic checker stays on as a belt-and-braces latch.
        checker_interval: 1_024,
        fault: if config.fault_rate_e4 > 0 {
            FaultConfig::uniform(
                f64::from(config.fault_rate_e4) / 10_000.0,
                config.seed ^ 0xFA17,
            )
        } else {
            FaultConfig::none()
        },
        ..MemoryConfig::default()
    };
    let mut mem = MemorySystem::new(mem_cfg);
    let mut rng = Rng::new(config.seed);
    let mut stats = FuzzStats::default();
    let mut now = 0u64;
    let mut mutation_armed = false;
    let mut spec_mutation_armed = false;
    let mut wheel = TimingWheel::new(2, now);
    mem.tick(now);

    for step in 0..config.steps {
        // Arm at the first step >= mutate_at where a stable writable
        // line exists (early on, every line is still in flight).
        if !mutation_armed && config.mutate_at.is_some_and(|at| step >= at) {
            mutation_armed = mem.seed_lost_owner_mutation(now).is_some();
        }
        // Likewise for the forgot-to-untag mutation: it needs a
        // resident speculatively tagged line to corrupt.
        if !spec_mutation_armed && config.spec_mutate_at.is_some_and(|at| step >= at) {
            spec_mutation_armed = mem.seed_forget_untag_mutation(now).is_some();
        }
        let fail = |violation: String| {
            Box::new(FuzzFailure {
                config: *config,
                step,
                violation,
                minimized_steps: None,
            })
        };
        let core = rng.below(config.cores as u64) as usize;
        let addr = pick_block(&mut rng, core) * 64 + (rng.below(8) * 8);
        // With squash steps enabled the roll space widens; the first
        // 100 outcomes keep their weights, so the baseline actions
        // still dominate the schedule.
        let roll = if config.squash {
            rng.below(118)
        } else {
            rng.below(100)
        };
        match roll {
            0..=34 => {
                mem.load(core, addr, now);
                stats.loads += 1;
            }
            35..=62 => {
                mem.store_drain(core, addr, now);
                stats.drains += 1;
            }
            63..=76 => {
                let origin = RfoOrigin::ALL[rng.below(3) as usize]; // skip CachePrefetcher
                mem.store_prefetch(core, addr, addr >> 4, now, origin);
                stats.prefetches += 1;
            }
            77..=84 => {
                let base = pick_block(&mut rng, core);
                let len = 1 + rng.below(8);
                mem.enqueue_burst(core, base..base + len, now);
                stats.bursts += 1;
            }
            85..=88 => {
                // Wakeup registration churn: the memory system's own
                // contractual wake, plus (half the time) a decoy that
                // lands anywhere from the near wheel to the far heap,
                // re-registering over whatever it held before.
                wheel.register(MEM_ID, mem.wake_at(now));
                if rng.below(2) == 0 {
                    wheel.register(DECOY_ID, now + 1 + rng.below(2 * NEAR_SLOTS));
                }
            }
            89..=90 => {
                wheel.cancel(rng.below(2) as usize);
            }
            91..=99 => {
                if let Some(w) = wheel.next_wake() {
                    // Fire the due wakeup — sometimes LATE by a small
                    // skew. Tardiness breaks bit-identity with the
                    // reference kernels, but coherence must survive it;
                    // the after-step checker below is the judge.
                    let target = now.max(w + rng.below(4));
                    stats.cycles += target - now;
                    now = target;
                    wheel.advance_to(now);
                    mem.tick(now);
                    stats.wakeups += 1;
                    if let Some(t) = wheel.next_wake() {
                        if t <= now {
                            return Err(fail(format!(
                                "timing wheel kept a due wakeup: next_wake {t} <= now {now}"
                            )));
                        }
                    }
                } else {
                    for _ in 0..=rng.below(8) {
                        now += 1;
                        mem.tick(now);
                        stats.cycles += 1;
                    }
                }
            }
            100..=109 => {
                // A wrong-path store run: spec-tagged RFOs the squash
                // will later attribute (or an architectural drain will
                // untag first — both must stay coherent).
                let base = pick_block(&mut rng, core);
                let len = 1 + rng.below(6);
                for i in 0..len {
                    let origin = RfoOrigin::ALL[rng.below(3) as usize];
                    let _ = mem.store_prefetch_spec(core, (base + i) * 64, 0xDEAD_0000, now, origin);
                }
                stats.spec_prefetches += len;
            }
            110..=113 => {
                // A speculative page burst; a later squash can land
                // while part of it is still queued (mid-burst drop).
                let base = pick_block(&mut rng, core);
                let len = 1 + rng.below(8);
                mem.enqueue_burst_spec(core, base..base + len, now);
                stats.bursts += 1;
            }
            _ => {
                // The squash resolves on `core`: drop its queued
                // speculative burst entries and charge its tags.
                mem.attribute_squash(core, now);
                stats.squashes += 1;
            }
        }
        stats.steps += 1;
        if let Err(v) = mem.check_invariants(now) {
            return Err(fail(v.to_string()));
        }
        if let Some(v) = mem.take_violation() {
            return Err(fail(v.to_string()));
        }
    }

    if let Err(v) = mem.check_invariants_thorough(now) {
        return Err(Box::new(FuzzFailure {
            config: *config,
            step: config.steps,
            violation: v.to_string(),
            minimized_steps: None,
        }));
    }
    Ok(stats)
}

/// Picks a block: half the time from the shared (contended) pool, half
/// from the core's private region.
fn pick_block(rng: &mut Rng, core: usize) -> u64 {
    if rng.below(2) == 0 {
        SHARED_BASE + rng.below(SHARED_BLOCKS)
    } else {
        PRIVATE_BASE + core as u64 * 0x1000 + rng.below(PRIVATE_BLOCKS)
    }
}

/// Shrinks a failing schedule to (near-)minimal length.
///
/// The scheduler is a pure function of `(seed, step)`, so truncating
/// `steps` replays an identical prefix; the smallest failing length is
/// found by bisection. (The closing thorough sweep can make shorter
/// prefixes fail too — bisection still converges on *a* minimal failing
/// length, just not always the globally smallest one.)
///
/// Returns the failure annotated with `minimized_steps`, or the
/// original failure if the full run no longer reproduces (which would
/// itself indicate nondeterminism and should never happen).
pub fn minimize(failure: &FuzzFailure) -> FuzzFailure {
    let mut lo = 1u32;
    // The violation was detected at `failure.step`, so steps = step + 1
    // must already fail; start the bracket there.
    let mut hi = (failure.step + 1).min(failure.config.steps.max(1));
    let fails_at = |steps: u32| {
        run_one(&FuzzConfig {
            steps,
            ..failure.config
        })
        .err()
    };
    if fails_at(hi).is_none() {
        return failure.clone();
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails_at(mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut minimized = fails_at(lo).map(|f| *f).unwrap_or_else(|| failure.clone());
    minimized.minimized_steps = Some(lo);
    minimized
}

/// Runs `count` schedules with consecutive seeds starting at
/// `base.seed`, stopping (and minimizing) at the first failure.
///
/// # Errors
///
/// The first failing seed's minimized [`FuzzFailure`].
pub fn run_seeds(base: &FuzzConfig, count: u64) -> Result<FuzzStats, Box<FuzzFailure>> {
    let mut total = FuzzStats::default();
    for i in 0..count {
        let cfg = FuzzConfig {
            seed: base.seed + i,
            ..*base
        };
        match run_one(&cfg) {
            Ok(s) => total.absorb(&s),
            Err(f) => return Err(Box::new(minimize(&f))),
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic() {
        let cfg = FuzzConfig {
            seed: 7,
            steps: 512,
            ..FuzzConfig::default()
        };
        let a = run_one(&cfg).expect("clean schedule");
        let b = run_one(&cfg).expect("clean schedule");
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.drains, b.drains);
        assert_eq!(a.prefetches, b.prefetches);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn a_batch_of_seeds_is_violation_free() {
        let base = FuzzConfig {
            seed: 100,
            steps: 384,
            ..FuzzConfig::default()
        };
        let stats = run_seeds(&base, 8).expect("no violations");
        assert_eq!(stats.steps, 8 * 384);
        assert!(stats.drains > 0 && stats.loads > 0 && stats.bursts > 0);
    }

    #[test]
    fn wakeup_skew_steps_fire_and_stay_coherent() {
        // The register/cancel/fire-late scheduler actions must actually
        // run (not just be reachable) and must never trip the checker.
        let base = FuzzConfig {
            seed: 4_000,
            steps: 768,
            ..FuzzConfig::default()
        };
        let stats = run_seeds(&base, 8).expect("wakeup skew must not break coherence");
        assert!(stats.wakeups > 0, "no wheel wakeup ever fired: {stats:?}");
        assert!(stats.cycles > 0);
    }

    #[test]
    fn faulty_seeds_stay_coherent() {
        // Fault injection perturbs timing, never correctness.
        let base = FuzzConfig {
            seed: 900,
            steps: 384,
            fault_rate_e4: 250,
            ..FuzzConfig::default()
        };
        run_seeds(&base, 4).expect("faults must not break coherence");
    }

    #[test]
    fn squash_steps_stay_coherent_across_256_seeds() {
        // The headline soak for the speculation model: wrong-path RFO
        // runs, speculative bursts and mid-anything squashes across 256
        // seeds, with the invariant checker after every step and the
        // wheel's next_wake audit live the whole time.
        let base = FuzzConfig {
            seed: 20_000,
            steps: 160,
            squash: true,
            ..FuzzConfig::default()
        };
        let stats = run_seeds(&base, 256).expect("squash steps must not break coherence");
        assert!(stats.spec_prefetches > 0, "spec runs actually fired: {stats:?}");
        assert!(stats.squashes > 0, "squashes actually resolved: {stats:?}");
        assert!(stats.wakeups > 0, "wheel audit was exercised: {stats:?}");
    }

    #[test]
    fn squash_steps_survive_fault_injection() {
        let base = FuzzConfig {
            seed: 31_000,
            steps: 384,
            squash: true,
            fault_rate_e4: 250,
            ..FuzzConfig::default()
        };
        run_seeds(&base, 4).expect("faults plus speculation must stay coherent");
    }

    #[test]
    fn the_forget_untag_mutation_is_caught_and_replayable() {
        // Negative control: a controller that performs a store on a
        // speculatively tagged line but forgets to untag it must trip
        // InvariantKind::SpeculativeLeak, and the failure must carry a
        // replayable repro line.
        let cfg = FuzzConfig {
            seed: 11,
            steps: 1_024,
            squash: true,
            spec_mutate_at: Some(64),
            ..FuzzConfig::default()
        };
        let failure = run_one(&cfg).expect_err("a forgotten untag must trip the checker");
        assert!(
            failure.violation.contains("speculative-leak"),
            "wrong violation: {}",
            failure.violation
        );
        assert!(failure.config.repro().contains("--squash"));
        assert!(failure.config.repro().contains("--spec-mutate-at 64"));
        // Deterministic replay of the exact failing schedule.
        let replay = run_one(&cfg).expect_err("replay fails identically");
        assert_eq!(replay.step, failure.step);
        let minimized = minimize(&failure);
        assert!(minimized.minimized_steps.expect("minimization ran") <= failure.step + 1);
    }

    #[test]
    fn the_lost_owner_mutation_is_caught_and_minimized() {
        let cfg = FuzzConfig {
            seed: 3,
            steps: 1_024,
            mutate_at: Some(200),
            ..FuzzConfig::default()
        };
        let failure = run_one(&cfg).expect_err("a lost owner must trip the checker");
        assert!(failure.step >= 200);
        let minimized = minimize(&failure);
        let n = minimized.minimized_steps.expect("minimization ran");
        assert!(n <= failure.step + 1);
        // The minimized schedule replays.
        let replay = run_one(&FuzzConfig { steps: n, ..cfg });
        assert!(replay.is_err(), "minimized schedule must still fail");
        assert!(minimized.to_string().contains("replay: spbsim verify fuzz"));
    }
}

//! Correctness tooling for the SPB simulator: executable reference
//! oracles, a differential test driver, and a coherence interleaving
//! fuzzer.
//!
//! The paper's headline claims (SPB ≈ ideal-RFO performance at a
//! fraction of the traffic) are only as trustworthy as the MESI/OoO
//! substrate they run on. This crate attacks that substrate from three
//! directions:
//!
//! 1. **Executable oracles** ([`oracle`]): a magic-memory in-order CPU
//!    model and a flat atomic-memory model replay the *same*
//!    deterministic workloads as the simulator and predict — exactly
//!    where the microarchitecture cannot change the answer, as bounds
//!    where it can — the committed µop mix, per-block store counts,
//!    per-block writers, and a cycle lower bound.
//! 2. **A differential driver** ([`differential`]): runs an application
//!    under the real simulator with an event collector attached and
//!    diffs the run (committed counts, store-performed event stream,
//!    final memory image) against the oracles.
//! 3. **An interleaving fuzzer** ([`fuzz`]): a seeded scheduler drives
//!    `spb_mem::MemorySystem` directly with randomly interleaved loads,
//!    store drains, RFO prefetches, page bursts, and time advances —
//!    optionally under a bounded fault plan — running the coherence
//!    invariant checker after every step. Failing seeds are minimized
//!    and replayable via `spbsim verify fuzz --seed N`.
//! 4. **A speculative-leak oracle** ([`leak`]): a squash-aware flat
//!    model replays the wrong-path episode plan and pins the exact
//!    wasted-RFO / leaked-M-state accounting of per-store speculation,
//!    plus a page-span leak bound for the SPB burst policies.
//!
//! The key contract the oracles rest on (pinned by a unit test in
//! `spb-cpu`): commit is in order and wrong-path µops are synthesized,
//! so each core's committed µop stream is *exactly* a prefix of its
//! trace, and [`spb_sim::CoreWindow`] records precisely how long that
//! prefix is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod fuzz;
pub mod leak;
pub mod oracle;

pub use differential::{check_app, DiffFailure, DiffOutcome};
pub use fuzz::{minimize, run_one, run_seeds, FuzzConfig, FuzzFailure, FuzzStats};
pub use leak::{check_run, predict_leak, LeakFailure, LeakPrediction, LeakReport};
pub use oracle::{predict, CorePrediction, KindCounts, OraclePrediction};

//! The differential driver: run the real simulator, diff it against the
//! reference oracles.
//!
//! One [`check_app`] call runs an application under a full
//! [`spb_sim::Simulation`] with an event collector attached, replays the
//! same workload through the [`crate::oracle`] models, and verifies:
//!
//! 1. **Committed µop mix (exact):** the merged and per-core committed
//!    store/load/branch counts of the measured window equal the in-order
//!    replay of each core's trace slice.
//! 2. **Cycle lower bound:** measured cycles ≥ the commit-width bound.
//! 3. **Store-performed stream:** every `StorePerformed` coherence event
//!    names a (core, block) pair the oracle's flat memory allows; no
//!    (core, block) drains more often than the trace stores to it; each
//!    core drains at least `stores − SB capacity` of its committed
//!    stores (nothing is lost); and the measured-window event count
//!    equals `MemStats::stores_performed` bit-exactly.
//! 4. **Memory image:** blocks with a unique writer in the flat memory
//!    are only ever drained by that writer (single-writer, end to end).
//!
//! Any mismatch is collected into a [`DiffFailure`] that names the run
//! and every failed check, so a CI log identifies the regression without
//! re-running anything.

use crate::oracle::{predict, OraclePrediction};
use spb_obs::{CoherenceKind, Collector, Event, EventKind, Phase};
use spb_sim::{RunResult, SimConfig, Simulation};
use spb_trace::profile::AppProfile;
use std::collections::HashMap;
use std::fmt;

/// A successful differential check, with enough detail for smoke-test
/// reporting.
#[derive(Debug)]
pub struct DiffOutcome {
    /// The simulator run that was checked.
    pub run: RunResult,
    /// The oracle prediction it was checked against.
    pub oracle: OraclePrediction,
    /// `StorePerformed` events observed (warm-up + measure).
    pub drains: u64,
    /// Distinct blocks drained.
    pub blocks: usize,
    /// `StorePerformed` counts keyed by `(core, block)` — the run's
    /// full drained-store stream, for cross-run comparisons.
    pub drained: HashMap<(u8, u64), u64>,
}

/// A differential check that found at least one disagreement between
/// the simulator and an oracle (or a run that aborted outright).
#[derive(Debug, Clone)]
pub struct DiffFailure {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Effective SB entries.
    pub sb_entries: usize,
    /// Every failed check, human-readable.
    pub mismatches: Vec<String>,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential check failed [{} / {} / sb={}]:",
            self.app, self.policy, self.sb_entries
        )?;
        for m in &self.mismatches {
            writeln!(f, "  - {m}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DiffFailure {}

/// Runs `app` under `cfg` and diffs the run against the oracles.
///
/// # Errors
///
/// Returns a [`DiffFailure`] listing every disagreement, or the run's
/// own abort diagnostic if the simulator did not complete.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (zero queues).
pub fn check_app(app: &AppProfile, cfg: &SimConfig) -> Result<DiffOutcome, Box<DiffFailure>> {
    let fail = |mismatches: Vec<String>| {
        Box::new(DiffFailure {
            app: app.name().to_string(),
            policy: cfg.policy.label(),
            sb_entries: cfg.effective_sb(),
            mismatches,
        })
    };
    let collector = Collector::new();
    let run = Simulation::with_config(app, cfg)
        .observer(collector.observer())
        .run()
        .map_err(|e| fail(vec![format!("run aborted: {e}")]))?;
    let events = collector.take();
    let oracle = predict(app, cfg.seed, &run.per_core, cfg.core.commit_width);

    let mut mismatches = Vec::new();
    check_commit_counts(&run, &oracle, &mut mismatches);
    check_cycle_bound(&run, &oracle, &mut mismatches);
    let drained = check_store_stream(cfg, &run, &oracle, &events, &mut mismatches);

    if mismatches.is_empty() {
        let blocks = drained
            .keys()
            .map(|&(_, b)| b)
            .collect::<std::collections::HashSet<_>>()
            .len();
        Ok(DiffOutcome {
            drains: drained.values().sum(),
            blocks,
            run,
            oracle,
            drained,
        })
    } else {
        Err(fail(mismatches))
    }
}

/// Exact committed-count agreement, merged and per core.
fn check_commit_counts(run: &RunResult, oracle: &OraclePrediction, out: &mut Vec<String>) {
    let totals = oracle.measured_totals();
    if run.uops != totals.uops {
        out.push(format!(
            "committed µops: simulator {} vs oracle {}",
            run.uops, totals.uops
        ));
    }
    for (what, sim, orc) in [
        ("stores", run.cpu.committed_stores, totals.stores),
        ("loads", run.cpu.committed_loads, totals.loads),
        ("branches", run.cpu.committed_branches, totals.branches),
    ] {
        if sim != orc {
            out.push(format!("committed {what}: simulator {sim} vs oracle {orc}"));
        }
    }
    for (c, (w, p)) in run.per_core.iter().zip(&oracle.per_core).enumerate() {
        for (what, sim, orc) in [
            ("stores", w.stores, p.measured.stores),
            ("loads", w.loads, p.measured.loads),
            ("branches", w.branches, p.measured.branches),
        ] {
            if sim != orc {
                out.push(format!(
                    "core {c} committed {what}: simulator {sim} vs oracle {orc}"
                ));
            }
        }
    }
}

/// Measured cycles can never undercut the commit-width bound.
fn check_cycle_bound(run: &RunResult, oracle: &OraclePrediction, out: &mut Vec<String>) {
    if run.cycles < oracle.min_cycles {
        out.push(format!(
            "cycles {} below the in-order commit-width lower bound {}",
            run.cycles, oracle.min_cycles
        ));
    }
}

/// Diffs the `StorePerformed` event stream against the flat memory.
fn check_store_stream(
    cfg: &SimConfig,
    run: &RunResult,
    oracle: &OraclePrediction,
    events: &[Event],
    out: &mut Vec<String>,
) -> HashMap<(u8, u64), u64> {
    let measure_start = events
        .iter()
        .find(|e| e.kind == EventKind::PhaseBegin(Phase::Measure))
        .map(|e| e.cycle);
    let mut drains: HashMap<(u8, u64), u64> = HashMap::new();
    let mut measured_drains = 0u64;
    for e in events {
        if let EventKind::Coherence {
            block,
            kind: CoherenceKind::StorePerformed,
        } = e.kind
        {
            *drains.entry((e.core, block)).or_insert(0) += 1;
            if measure_start.is_some_and(|m| e.cycle >= m) {
                measured_drains += 1;
            }
        }
    }

    // Observability agrees with the stats counter, bit-exactly.
    if measured_drains != run.mem.stores_performed {
        out.push(format!(
            "measured StorePerformed events {} vs MemStats::stores_performed {}",
            measured_drains, run.mem.stores_performed
        ));
    }

    let mut per_core_drains = vec![0u64; oracle.per_core.len()];
    for (&(core, block), &n) in &drains {
        let Some(p) = oracle.per_core.get(core as usize) else {
            out.push(format!("drain on core {core}, beyond the thread count"));
            continue;
        };
        per_core_drains[core as usize] += n;
        match p.store_blocks.get(&block) {
            None => out.push(format!(
                "core {core} drained block {block:#x}, which its trace never stores to"
            )),
            Some(&max) if n > max => out.push(format!(
                "core {core} drained block {block:#x} {n} times, trace stores only {max}"
            )),
            _ => {}
        }
        if let Some(img) = oracle.image.get(&block) {
            if let Some(w) = img.unique_writer {
                if w != core {
                    out.push(format!(
                        "block {block:#x} drained by core {core} but owned by writer {w} \
                         in the flat memory image"
                    ));
                }
            }
        }
    }

    // Nothing lost: every committed store either drained or still sits
    // in the (bounded) store buffer. Coalescing merges drains, so the
    // tight bound only holds with it off (the paper's default).
    if !cfg.core.coalescing {
        let sb = cfg.effective_sb() as u64;
        for (c, p) in oracle.per_core.iter().enumerate() {
            let drained = per_core_drains[c];
            if drained + sb < p.total_stores {
                out.push(format!(
                    "core {c} committed {} stores but drained only {drained} \
                     (> {sb} unaccounted — stores lost)",
                    p.total_stores
                ));
            }
            if drained > p.total_stores {
                out.push(format!(
                    "core {c} drained {drained} stores but its trace prefix commits only {}",
                    p.total_stores
                ));
            }
        }
    }

    drains
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_sim::PolicyKind;

    fn small() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.warmup_uops = 8_000;
        cfg.measure_uops = 60_000;
        cfg
    }

    #[test]
    fn spec_app_agrees_with_the_oracles_under_spb() {
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = small().with_sb(14).with_policy(PolicyKind::spb_default());
        let out = check_app(&app, &cfg).expect("differential check passes");
        assert!(out.drains > 0, "the run drained stores");
        assert!(out.blocks > 1);
    }

    #[test]
    fn parsec_app_agrees_with_the_oracles() {
        let app = AppProfile::by_name("dedup").unwrap();
        let mut cfg = small().with_sb(14);
        cfg.warmup_uops = 2_000;
        cfg.measure_uops = 12_000;
        let out = check_app(&app, &cfg).expect("differential check passes");
        assert_eq!(out.run.per_core.len(), 8);
    }

    #[test]
    fn a_corrupted_committed_count_is_caught() {
        // Sanity for the checker itself: perturb the window the oracle
        // replays and the diff must light up.
        let app = AppProfile::by_name("gcc").unwrap();
        let cfg = small();
        let collector = Collector::new();
        let mut run = Simulation::with_config(&app, &cfg)
            .observer(collector.observer())
            .run()
            .unwrap();
        run.per_core[0].warmup_uops += 1; // off-by-one replay window
        let oracle = predict(&app, cfg.seed, &run.per_core, cfg.core.commit_width);
        let mut mismatches = Vec::new();
        check_commit_counts(&run, &oracle, &mut mismatches);
        assert!(
            !mismatches.is_empty(),
            "a shifted window must desynchronize the committed counts"
        );
    }
}

//! Executable reference models: a magic-memory in-order CPU and a flat
//! atomic memory.
//!
//! Both models replay the same [`spb_trace::PhasedWorkload`]s the
//! simulator ran (same profile, same seed) with *no* microarchitecture:
//! every memory access completes instantly against a flat memory, and
//! µops retire strictly in trace order. That deliberately throws away
//! everything the simulator models — and everything that is left must
//! therefore agree bit-exactly between the two, independent of policy,
//! store-buffer size, fault plan, or cache behaviour:
//!
//! - the per-kind µop counts of any committed window (commit is in
//!   order, so a window is a trace slice);
//! - the set of blocks each core may ever write, with per-block store
//!   counts (an upper bound on drains; tight to within one SB of slack);
//! - the block-granularity memory image: which core wrote each block
//!   (the paper's workloads give every block a unique writer, which the
//!   oracle verifies rather than assumes);
//! - a commit-width cycle lower bound.

use spb_sim::runner::CoreWindow;
use spb_trace::profile::AppProfile;
use spb_trace::{OpKind, TraceSource};
use std::collections::HashMap;

/// Per-kind µop counts over a window of one thread's trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Total µops in the window.
    pub uops: u64,
    /// Stores.
    pub stores: u64,
    /// Loads.
    pub loads: u64,
    /// Branches.
    pub branches: u64,
}

/// What the in-order magic-memory model predicts for one core.
#[derive(Debug, Clone, Default)]
pub struct CorePrediction {
    /// Exact per-kind counts of the measured window
    /// `[warmup_uops, warmup_uops + uops)` of this core's trace.
    pub measured: KindCounts,
    /// Stores per block over the *whole* committed prefix
    /// `[0, trace_len)` — warm-up included, because store drains are
    /// observed from cycle zero.
    pub store_blocks: HashMap<u64, u64>,
    /// Total stores over the whole committed prefix.
    pub total_stores: u64,
}

/// Flat atomic-memory image of one block after replaying every core's
/// committed prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockImage {
    /// The single writing core, or `None` if more than one core wrote
    /// the block (the workloads under test keep thread data disjoint,
    /// so the oracle *verifies* uniqueness instead of assuming it).
    pub unique_writer: Option<u8>,
    /// Stores to the block across all cores.
    pub stores: u64,
}

/// The combined prediction of both reference models for one run.
#[derive(Debug, Clone, Default)]
pub struct OraclePrediction {
    /// Per-core in-order replay results, indexed like the simulator's
    /// cores.
    pub per_core: Vec<CorePrediction>,
    /// Lower bound on measured cycles: no core can commit more than
    /// `commit_width` µops per cycle.
    pub min_cycles: u64,
    /// Flat-memory image at block granularity.
    pub image: HashMap<u64, BlockImage>,
}

impl OraclePrediction {
    /// Exact total per-kind counts of the measured window, summed over
    /// cores — what the simulator's merged [`spb_cpu::core::CpuStats`]
    /// must report.
    pub fn measured_totals(&self) -> KindCounts {
        let mut t = KindCounts::default();
        for p in &self.per_core {
            t.uops += p.measured.uops;
            t.stores += p.measured.stores;
            t.loads += p.measured.loads;
            t.branches += p.measured.branches;
        }
        t
    }
}

/// Replays `app`'s per-thread traces under `seed` and predicts the run
/// described by `windows` (one [`CoreWindow`] per thread, taken from
/// [`spb_sim::RunResult::per_core`]).
///
/// # Panics
///
/// Panics if `windows` does not have one entry per application thread,
/// or if a window claims a longer prefix than the trace can produce
/// (profiles are unbounded, so the latter indicates a harness bug).
pub fn predict(
    app: &AppProfile,
    seed: u64,
    windows: &[CoreWindow],
    commit_width: u32,
) -> OraclePrediction {
    let traces = app.build_threads(seed);
    assert_eq!(
        traces.len(),
        windows.len(),
        "one commit window per application thread"
    );
    let mut prediction = OraclePrediction::default();
    let mut writers: HashMap<u64, (u8, u64)> = HashMap::new(); // block -> (first writer, stores)
    let mut multi_writer: Vec<u64> = Vec::new();

    for (core, (mut trace, window)) in traces.into_iter().zip(windows).enumerate() {
        let mut p = CorePrediction::default();
        let measure_from = window.warmup_uops;
        for i in 0..window.trace_len() {
            let op = trace
                .next_op()
                .expect("application profiles are unbounded trace sources");
            let kind = op.kind();
            if i >= measure_from {
                p.measured.uops += 1;
                match kind {
                    OpKind::Store { .. } => p.measured.stores += 1,
                    OpKind::Load { .. } => p.measured.loads += 1,
                    OpKind::Branch { .. } => p.measured.branches += 1,
                    _ => {}
                }
            }
            if let OpKind::Store { addr, .. } = kind {
                let block = addr / 64;
                *p.store_blocks.entry(block).or_insert(0) += 1;
                p.total_stores += 1;
                let e = writers.entry(block).or_insert((core as u8, 0));
                e.1 += 1;
                if e.0 != core as u8 {
                    multi_writer.push(block);
                }
            }
        }
        prediction.per_core.push(p);
    }

    prediction.min_cycles = prediction
        .per_core
        .iter()
        .map(|p| p.measured.uops.div_ceil(u64::from(commit_width.max(1))))
        .max()
        .unwrap_or(0);

    prediction.image = writers
        .into_iter()
        .map(|(block, (first, stores))| {
            let unique = (!multi_writer.contains(&block)).then_some(first);
            (
                block,
                BlockImage {
                    unique_writer: unique,
                    stores,
                },
            )
        })
        .collect();
    prediction
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_trace::profile::AppProfile;

    fn windows(app: &AppProfile, warmup: u64, measure: u64) -> Vec<CoreWindow> {
        (0..app.threads())
            .map(|_| CoreWindow {
                warmup_uops: warmup,
                uops: measure,
                ..CoreWindow::default()
            })
            .collect()
    }

    #[test]
    fn prediction_is_deterministic() {
        let app = AppProfile::by_name("x264").unwrap();
        let w = windows(&app, 1_000, 5_000);
        let a = predict(&app, 42, &w, 4);
        let b = predict(&app, 42, &w, 4);
        assert_eq!(a.measured_totals(), b.measured_totals());
        assert_eq!(a.image.len(), b.image.len());
        assert_eq!(a.min_cycles, b.min_cycles);
    }

    #[test]
    fn window_counts_are_a_trace_slice() {
        // The measured counts must equal whole-prefix counts minus
        // warm-up-prefix counts: the window is literally a slice.
        let app = AppProfile::by_name("bwaves").unwrap();
        let w_all = windows(&app, 0, 6_000);
        let w_warm = windows(&app, 0, 1_000);
        let w_meas = windows(&app, 1_000, 5_000);
        let all = predict(&app, 7, &w_all, 4);
        let warm = predict(&app, 7, &w_warm, 4);
        let meas = predict(&app, 7, &w_meas, 4);
        assert_eq!(
            meas.measured_totals().stores,
            all.measured_totals().stores - warm.measured_totals().stores
        );
        assert_eq!(
            meas.measured_totals().loads,
            all.measured_totals().loads - warm.measured_totals().loads
        );
    }

    #[test]
    fn parsec_threads_have_disjoint_writers() {
        let app = AppProfile::by_name("dedup").unwrap();
        assert!(app.threads() > 1);
        let w = windows(&app, 500, 3_000);
        let p = predict(&app, 42, &w, 4);
        assert_eq!(p.per_core.len(), app.threads() as usize);
        assert!(
            p.image.values().all(|b| b.unique_writer.is_some()),
            "thread-private data regions give every block a unique writer"
        );
    }

    #[test]
    fn min_cycles_tracks_commit_width() {
        let app = AppProfile::by_name("gcc").unwrap();
        let w = windows(&app, 0, 8_000);
        let wide = predict(&app, 1, &w, 8);
        let narrow = predict(&app, 1, &w, 2);
        assert!(narrow.min_cycles >= 4 * wide.min_cycles - 4);
        assert_eq!(narrow.min_cycles, 8_000u64.div_ceil(2));
    }
}

//! The speculative-leak oracle: a squash-aware flat model of wrong-path
//! ownership traffic.
//!
//! The squash model ([`spb_trace::squash`]) gives every wrong-path
//! episode a fresh, private page span no other episode (of any core)
//! ever touches, and no wrong-path block is ever architecturally
//! stored. That makes the leak *flat-model computable*: replaying each
//! core's [`EpisodePlan`] for exactly the episodes whose squash
//! resolved inside the measured window yields, with no
//! microarchitecture at all, the exact set of blocks a per-store
//! speculative policy (at-execute) pulls into M state and abandons —
//! and a hard upper bound (the page spans) on what any burst policy
//! (the SPB family, whose wrong-path detector only ever bursts into
//! the remainder of an episode page) can leak.
//!
//! [`check_run`] diffs a real [`RunResult`] against that model:
//!
//! - **conservation** (per-store policies): every wrong-path store's
//!   RFO either tagged a block (`spec_leaked_m_blocks`) or was still
//!   queued at the squash and dropped (`spec_dropped`) — the two must
//!   sum to the flat model's store count exactly;
//! - **bound** (every policy): leaked + dropped blocks never exceed
//!   the episodes' page spans, and the spans themselves never exceed
//!   `squashes × ceil(depth_max / blocks-per-page) × blocks-per-page`
//!   (the window-N × page-fraction × storm bound stated in DESIGN.md
//!   §13 — pessimistically assuming the detector fires on every page);
//! - **attribution exactness**: episode blocks are cold and private,
//!   so every tagged block cost exactly one RFO and zero coherence
//!   messages, and (in fault-free runs) exactly one DRAM fill;
//! - **passivity**: policies that never issue speculative RFOs
//!   (none / at-commit / ideal) must leak nothing.
//!
//! A run with the squash model disabled must report every speculative
//! counter as zero — that degenerate case is what makes squash-rate-0
//! the executable spec of "the model is off".

use spb_sim::{CoreWindow, PolicyKind, RunResult, SimConfig};
use spb_trace::op::BLOCKS_PER_PAGE;
use spb_trace::squash::EpisodePlan;
use spb_trace::SquashConfig;
use std::collections::HashSet;
use std::fmt;

/// What the flat model predicts for the measured window of one run.
#[derive(Debug, Clone, Default)]
pub struct LeakPrediction {
    /// Squash episodes resolved inside the measured window (all cores).
    pub episodes: u64,
    /// Wrong-path stores those episodes performed — the exact leak of a
    /// per-store speculative policy with nothing queued at squash time.
    pub stored_blocks: u64,
    /// Total blocks in the episodes' page spans — the hard ceiling for
    /// any policy that bursts within episode pages.
    pub span_blocks: u64,
    /// The exact flat leaked set: every block the measured episodes'
    /// wrong-path stores touched.
    pub blocks: HashSet<u64>,
}

/// A discrepancy between the flat model and a real run.
#[derive(Debug, Clone)]
pub struct LeakFailure {
    /// Which property failed.
    pub property: &'static str,
    /// Human-readable diff.
    pub detail: String,
}

impl fmt::Display for LeakFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leak oracle [{}]: {}", self.property, self.detail)
    }
}

impl std::error::Error for LeakFailure {}

/// A passed check with the numbers it compared, for reporting.
#[derive(Debug, Clone)]
pub struct LeakReport {
    /// The flat-model prediction the run was checked against.
    pub prediction: LeakPrediction,
    /// Names of the properties that held.
    pub checks: Vec<&'static str>,
}

/// Per-episode block ceiling: an episode of at most `depth_max` stores
/// spans at most this many blocks, and the wrong-path detector never
/// bursts outside an episode's pages.
pub fn per_episode_block_bound(cfg: &SquashConfig) -> u64 {
    u64::from(cfg.depth_max).div_ceil(BLOCKS_PER_PAGE).max(1) * BLOCKS_PER_PAGE
}

/// Replays each core's [`EpisodePlan`] and accumulates the episodes in
/// `[warmup_squashes, warmup_squashes + squashes)` — exactly the ones
/// whose squash resolved inside the measured window, which is where the
/// simulator attributes their waste (tags survive the warm-up stats
/// reset precisely so that attribution lands with the squash).
pub fn predict_leak(cfg: &SquashConfig, windows: &[CoreWindow]) -> LeakPrediction {
    let mut p = LeakPrediction::default();
    for (core, w) in windows.iter().enumerate() {
        let mut plan = EpisodePlan::new(cfg, core);
        for episode in 0..w.warmup_squashes + w.squashes {
            let run = plan.next_episode();
            if episode < w.warmup_squashes {
                continue; // attributed into warm-up stats, then reset
            }
            p.episodes += 1;
            p.stored_blocks += u64::from(run.depth);
            p.span_blocks += u64::from(run.depth).div_ceil(BLOCKS_PER_PAGE).max(1) * BLOCKS_PER_PAGE;
            p.blocks.extend(run.blocks());
        }
    }
    p
}

/// How a policy participates in wrong-path speculation.
enum SpecClass {
    /// Issues one speculative RFO per wrong-path store (at-execute).
    PerStore,
    /// Bursts into episode pages via the wrong-path detector (SPB).
    Burst,
    /// Never issues speculative RFOs (none / at-commit / ideal).
    Passive,
}

fn classify(policy: &PolicyKind) -> SpecClass {
    match policy {
        PolicyKind::AtExecute => SpecClass::PerStore,
        PolicyKind::Spb { .. } | PolicyKind::SpbDynamic { .. } | PolicyKind::SpbFeedback { .. } => {
            SpecClass::Burst
        }
        PolicyKind::None | PolicyKind::AtCommit | PolicyKind::IdealSb => SpecClass::Passive,
    }
}

/// Checks a run's speculative-waste counters against the flat model.
///
/// # Errors
///
/// Returns the first failed property with the compared numbers.
pub fn check_run(cfg: &SimConfig, r: &RunResult) -> Result<LeakReport, Box<LeakFailure>> {
    let fail = |property: &'static str, detail: String| {
        Err(Box::new(LeakFailure { property, detail }))
    };
    let m = &r.mem;
    let mut checks = Vec::new();

    if !cfg.squash.enabled() {
        // The degenerate case is an exact spec: the model off means no
        // speculative counter may ever move.
        let all = [
            m.spec_rfos_issued,
            m.spec_wasted_rfos,
            m.spec_wasted_coh_msgs,
            m.spec_leaked_m_blocks,
            m.spec_wasted_dram,
            m.spec_squashes,
            m.spec_dropped,
            r.cpu.squash_episodes,
            r.cpu.wrong_path_stores_injected,
        ];
        if all.iter().any(|&c| c != 0) {
            return fail(
                "disabled-model-is-silent",
                format!("squash model disabled but speculative counters moved: {all:?}"),
            );
        }
        checks.push("disabled-model-is-silent");
        return Ok(LeakReport {
            prediction: LeakPrediction::default(),
            checks,
        });
    }

    let pred = predict_leak(&cfg.squash, &r.per_core);

    let squashes: u64 = r.per_core.iter().map(|w| w.squashes).sum();
    if m.spec_squashes != squashes || r.cpu.squash_episodes != squashes {
        return fail(
            "squash-accounting",
            format!(
                "per-core squashes {squashes} vs mem {} vs cpu {}",
                m.spec_squashes, r.cpu.squash_episodes
            ),
        );
    }
    checks.push("squash-accounting");

    // Episode blocks are cold and private: each tagged block cost
    // exactly one RFO and no coherence traffic.
    if m.spec_wasted_rfos != m.spec_leaked_m_blocks {
        return fail(
            "one-rfo-per-leaked-block",
            format!(
                "wasted RFOs {} != leaked M blocks {}",
                m.spec_wasted_rfos, m.spec_leaked_m_blocks
            ),
        );
    }
    checks.push("one-rfo-per-leaked-block");
    if m.spec_wasted_coh_msgs != 0 {
        return fail(
            "private-episodes-move-no-coherence",
            format!("wasted coherence messages {}", m.spec_wasted_coh_msgs),
        );
    }
    checks.push("private-episodes-move-no-coherence");

    let fault_free =
        m.faults_dram_spiked == 0 && m.faults_ack_delayed == 0 && m.faults_mshr_denied == 0;
    if fault_free && m.spec_wasted_dram != m.spec_leaked_m_blocks {
        return fail(
            "one-fill-per-leaked-block",
            format!(
                "wasted DRAM fills {} != leaked M blocks {} in a fault-free run",
                m.spec_wasted_dram, m.spec_leaked_m_blocks
            ),
        );
    }
    if fault_free {
        checks.push("one-fill-per-leaked-block");
    }

    // The hard ceiling, for every policy: nothing speculative escapes
    // the episodes' page spans.
    if m.spec_leaked_m_blocks + m.spec_dropped > pred.span_blocks {
        return fail(
            "page-span-bound",
            format!(
                "leaked {} + dropped {} exceeds the episodes' span of {} blocks",
                m.spec_leaked_m_blocks, m.spec_dropped, pred.span_blocks
            ),
        );
    }
    checks.push("page-span-bound");
    let ceiling = pred.episodes * per_episode_block_bound(&cfg.squash);
    if pred.span_blocks > ceiling {
        return fail(
            "per-episode-bound",
            format!(
                "episode spans {} exceed squashes {} x per-episode bound {}",
                pred.span_blocks,
                pred.episodes,
                per_episode_block_bound(&cfg.squash)
            ),
        );
    }
    checks.push("per-episode-bound");

    match classify(&cfg.policy) {
        SpecClass::PerStore => {
            // Conservation: every wrong-path store's RFO either tagged
            // its block or was dropped from the queue at the squash.
            if m.spec_leaked_m_blocks + m.spec_dropped != pred.stored_blocks {
                return fail(
                    "per-store-conservation",
                    format!(
                        "leaked {} + dropped {} != flat model's {} wrong-path stores",
                        m.spec_leaked_m_blocks, m.spec_dropped, pred.stored_blocks
                    ),
                );
            }
            checks.push("per-store-conservation");
        }
        SpecClass::Burst => {
            // The detector needs a run of `n` stores before it bursts,
            // so it can never leak more than the span minus nothing —
            // the page-span bound above is the contract; here we add
            // that a burst policy leaks at most what per-store would
            // have spanned.
            if m.spec_leaked_m_blocks > pred.span_blocks {
                return fail(
                    "burst-span-bound",
                    format!(
                        "burst policy leaked {} of a {}-block span",
                        m.spec_leaked_m_blocks, pred.span_blocks
                    ),
                );
            }
            checks.push("burst-span-bound");
        }
        SpecClass::Passive => {
            if m.spec_rfos_issued != 0 || m.spec_leaked_m_blocks != 0 || m.spec_dropped != 0 {
                return fail(
                    "passive-policies-leak-nothing",
                    format!(
                        "passive policy issued {} spec RFOs, leaked {}, dropped {}",
                        m.spec_rfos_issued, m.spec_leaked_m_blocks, m.spec_dropped
                    ),
                );
            }
            checks.push("passive-policies-leak-nothing");
        }
    }

    Ok(LeakReport {
        prediction: pred,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_sim::Simulation;
    use spb_trace::profile::AppProfile;

    fn squash_cfg(policy: PolicyKind, spec: &str) -> SimConfig {
        SimConfig::quick()
            .with_sb(14)
            .with_policy(policy)
            .with_squash(SquashConfig::parse(spec).unwrap())
    }

    #[test]
    fn per_store_policy_matches_the_flat_model_exactly() {
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = squash_cfg(PolicyKind::AtExecute, "rate=0.1,depth=8..32,storm=2,seed=5");
        let r = Simulation::with_config(&app, &cfg).run().unwrap();
        assert!(r.mem.spec_leaked_m_blocks > 0, "storms leaked something");
        let report = check_run(&cfg, &r).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks.contains(&"per-store-conservation"));
        assert!(report.prediction.stored_blocks >= r.mem.spec_leaked_m_blocks);
    }

    #[test]
    fn spb_policy_stays_inside_the_span_bound() {
        let app = AppProfile::by_name("x264").unwrap();
        // Window 8 with depth up to 64: the wrong-path detector fires.
        let cfg = squash_cfg(
            PolicyKind::parse("spb:n=8").unwrap(),
            "rate=0.1,depth=16..64,storm=2,seed=5",
        );
        let r = Simulation::with_config(&app, &cfg).run().unwrap();
        assert!(
            r.mem.spec_leaked_m_blocks > 0,
            "the wrong-path detector bursts under deep storms"
        );
        let report = check_run(&cfg, &r).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks.contains(&"burst-span-bound"));
    }

    #[test]
    fn passive_policy_leaks_nothing() {
        let app = AppProfile::by_name("gcc").unwrap();
        let cfg = squash_cfg(PolicyKind::AtCommit, "rate=0.2,depth=8..32,seed=3");
        let r = Simulation::with_config(&app, &cfg).run().unwrap();
        assert!(r.cpu.squash_episodes > 0, "squashes still happen");
        let report = check_run(&cfg, &r).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checks.contains(&"passive-policies-leak-nothing"));
    }

    #[test]
    fn disabled_model_is_the_zero_spec() {
        let app = AppProfile::by_name("gcc").unwrap();
        let cfg = SimConfig::quick();
        let r = Simulation::with_config(&app, &cfg).run().unwrap();
        let report = check_run(&cfg, &r).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.checks, vec!["disabled-model-is-silent"]);
        assert_eq!(report.prediction.episodes, 0);
    }

    #[test]
    fn a_doctored_leak_count_is_caught() {
        // Negative control at the accounting level: an off-by-one in
        // the leaked-block counter breaks conservation.
        let app = AppProfile::by_name("x264").unwrap();
        let cfg = squash_cfg(PolicyKind::AtExecute, "rate=0.1,depth=8..32,storm=2,seed=5");
        let mut r = Simulation::with_config(&app, &cfg).run().unwrap();
        r.mem.spec_leaked_m_blocks += 1;
        let err = check_run(&cfg, &r).expect_err("conservation must catch the doctoring");
        assert!(
            err.to_string().contains("one-rfo-per-leaked-block"),
            "{err}"
        );
        // Doctoring both sides of the RFO identity still trips the
        // per-store conservation law.
        r.mem.spec_wasted_rfos += 1;
        r.mem.spec_wasted_dram += 1;
        let err = check_run(&cfg, &r).expect_err("still caught");
        assert!(err.to_string().contains("per-store-conservation"), "{err}");
    }

    #[test]
    fn prediction_replays_the_injector_exactly() {
        // The flat set must contain every block of every measured
        // episode and nothing else: spot-check sizes and region.
        let cfg = SquashConfig::parse("rate=1,depth=4..16,seed=2").unwrap();
        let windows = [
            CoreWindow {
                warmup_squashes: 3,
                squashes: 5,
                ..CoreWindow::default()
            },
            CoreWindow {
                warmup_squashes: 0,
                squashes: 2,
                ..CoreWindow::default()
            },
        ];
        let p = predict_leak(&cfg, &windows);
        assert_eq!(p.episodes, 7);
        assert_eq!(p.blocks.len() as u64, p.stored_blocks, "fresh spans never collide");
        assert!(p.span_blocks >= p.stored_blocks);
        assert!(p.span_blocks <= p.episodes * per_episode_block_bound(&cfg));
    }
}

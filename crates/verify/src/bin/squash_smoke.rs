//! Squash-storm smoke: the CI gate for the wrong-path speculation
//! model.
//!
//! Four checks, sized well under a minute in release:
//!
//! 1. **Sweep**: squash rates 0 / 0.05 / 0.2 × {at-execute, spb,
//!    at-commit} on a SPEC and a PARSEC app, under all three kernels.
//!    Every cell must complete with zero invariant violations (a
//!    coherence-checker trip fails the run itself) and all three
//!    kernels must agree bit-for-bit on every counter — including the
//!    new speculative-waste ones.
//! 2. **Leak oracle**: every cell's waste accounting must satisfy
//!    `spb_verify::leak::check_run` — conservation for at-execute, the
//!    page-span bound for SPB, silence for at-commit and for rate 0.
//! 3. **Golden grid**: the 10 quick-grid cells of x264 re-run with an
//!    *explicit* rate-0 squash config must reproduce the committed
//!    `results/sweep-grid-quick.json` records byte-for-byte under
//!    every kernel (`wall_ms`, host time, zeroed on both sides).
//! 4. **Fuzz**: 32 interleaving-fuzzer seeds with squash steps enabled
//!    (speculative RFO runs, burst enqueues, mid-drain squashes) run
//!    green, and the seeded forget-to-untag mutation is still caught —
//!    proving the speculative-leak checker can actually fail.

use spb_sim::config::{KernelMode, PolicyKind};
use spb_sim::sweep::{SweepRecord, SweepReport};
use spb_sim::{SimConfig, Simulation};
use spb_trace::profile::AppProfile;
use spb_trace::SquashConfig;
use spb_verify::{check_run, run_one, run_seeds, FuzzConfig};

const KERNELS: [KernelMode; 3] = [KernelMode::Tick, KernelMode::Event, KernelMode::Wheel];
const RATES: [f64; 3] = [0.0, 0.05, 0.2];

fn digest(r: &spb_sim::RunResult) -> String {
    format!(
        "{} {} {:?} {:?} {:?}",
        r.cycles, r.uops, r.cpu, r.mem, r.per_core
    )
}

fn main() {
    let t0 = std::time::Instant::now();
    let mut failures = 0usize;

    // 1 + 2: rate × policy × kernel sweep with kernel cross-check and
    // the leak oracle on every cell.
    let apps = [
        AppProfile::by_name("x264").expect("suite app"),
        AppProfile::by_name("dedup").expect("suite app"),
    ];
    let policies = [
        ("at-execute", PolicyKind::AtExecute),
        ("spb", PolicyKind::spb_default()),
        ("at-commit", PolicyKind::AtCommit),
    ];
    println!(
        "{:<8} {:<10} {:>5} {:>9} {:>11} {:>9} {:>8}",
        "app", "policy", "rate", "episodes", "wasted-rfos", "leaked-m", "dropped"
    );
    for app in &apps {
        let mut base = SimConfig::quick().with_sb(14);
        if app.threads() > 1 {
            base.warmup_uops = 10_000;
            base.measure_uops = 80_000;
        }
        for (label, policy) in policies {
            for rate in RATES {
                let spec = format!("rate={rate},depth=8..32,storm=4,seed=11");
                let cfg = base
                    .clone()
                    .with_policy(policy)
                    .with_squash(SquashConfig::parse(&spec).expect("smoke squash spec"));
                let mut first: Option<(String, spb_sim::RunResult)> = None;
                for kernel in KERNELS {
                    let run = match Simulation::with_config(app, &cfg.clone().with_kernel(kernel))
                        .run()
                    {
                        Ok(r) => r,
                        Err(e) => {
                            failures += 1;
                            eprintln!("FAILED {} {label} rate={rate} {}: {e}", app.name(), kernel.label());
                            continue;
                        }
                    };
                    let d = digest(&run);
                    match &first {
                        None => {
                            if let Err(e) = check_run(&cfg, &run) {
                                failures += 1;
                                eprintln!("FAILED {} {label} rate={rate}: {e}", app.name());
                            }
                            println!(
                                "{:<8} {:<10} {:>5} {:>9} {:>11} {:>9} {:>8}",
                                app.name(),
                                label,
                                rate,
                                run.cpu.squash_episodes,
                                run.mem.spec_wasted_rfos,
                                run.mem.spec_leaked_m_blocks,
                                run.mem.spec_dropped,
                            );
                            first = Some((d, run));
                        }
                        Some((reference, _)) => {
                            if d != *reference {
                                failures += 1;
                                eprintln!(
                                    "FAILED {} {label} rate={rate}: {} kernel diverged from tick",
                                    app.name(),
                                    kernel.label()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // 3: rate-0 golden-grid byte identity (x264's 10 cells, every kernel).
    let golden_path = format!(
        "{}/results/sweep-grid-quick.json",
        std::env::current_dir().unwrap().display()
    );
    let gold = SweepReport::parse(&std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        eprintln!("squash_smoke: reading {golden_path}: {e}");
        std::process::exit(1);
    }))
    .expect("golden report parses");
    let zero = SquashConfig::parse("rate=0,seed=9").expect("rate-0 spec");
    let app = AppProfile::by_name("x264").expect("suite app");
    let mut grid_cells = 0usize;
    let mut configs = vec![SimConfig::quick().with_policy(PolicyKind::IdealSb)];
    for (_, policy) in policies {
        for sb in [14usize, 28, 56] {
            configs.push(SimConfig::quick().with_sb(sb).with_policy(policy));
        }
    }
    for kernel in KERNELS {
        for cfg in &configs {
            let cfg = cfg.clone().with_squash(zero).with_kernel(kernel);
            let run = Simulation::with_config(&app, &cfg).run_or_panic();
            let mut fresh = SweepRecord::from_run(&run);
            let Some(g) = gold
                .records
                .iter()
                .find(|g| g.app == fresh.app && g.policy == fresh.policy && g.sb == fresh.sb)
            else {
                failures += 1;
                eprintln!("FAILED golden: {} {} sb={} missing", fresh.app, fresh.policy, fresh.sb);
                continue;
            };
            let mut g = g.clone();
            fresh.wall_ms = 0.0;
            g.wall_ms = 0.0;
            grid_cells += 1;
            if format!("{:#}", fresh.to_json()) != format!("{:#}", g.to_json()) {
                failures += 1;
                eprintln!(
                    "FAILED golden: {} {} sb={} not byte-identical under {}",
                    g.app,
                    g.policy,
                    g.sb,
                    kernel.label()
                );
            }
        }
    }
    println!("golden grid: {grid_cells} rate-0 cells checked against the committed records");

    // 4: fuzz with squash steps + the speculative-leak negative control.
    let fuzz = FuzzConfig {
        seed: 50_000,
        steps: 192,
        squash: true,
        ..FuzzConfig::default()
    };
    match run_seeds(&fuzz, 32) {
        Ok(stats) => println!(
            "fuzz: 32 squash seeds, {} steps, {} spec prefetches, {} squashes, 0 violations",
            stats.steps, stats.spec_prefetches, stats.squashes
        ),
        Err(f) => {
            failures += 1;
            eprintln!("FAILED fuzz: {f}");
        }
    }
    let control = FuzzConfig {
        seed: 11,
        steps: 1024,
        squash: true,
        spec_mutate_at: Some(64),
        ..FuzzConfig::default()
    };
    match run_one(&control) {
        Err(f) if f.violation.contains("speculative-leak") => {
            println!("negative control: forget-to-untag mutation caught at step {}", f.step);
        }
        Err(f) => {
            failures += 1;
            eprintln!("FAILED control: wrong violation kind: {}", f.violation);
        }
        Ok(_) => {
            failures += 1;
            eprintln!("FAILED control: the forget-to-untag mutation went unnoticed");
        }
    }

    println!("squash_smoke: {:.1}s", t0.elapsed().as_secs_f64());
    if failures > 0 {
        eprintln!("squash_smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("squash_smoke: OK");
}

//! Verification smoke: the differential-oracle suite plus an
//! interleaving-fuzzer batch, sized for CI.
//!
//! Default budget (the CI gate, well under two minutes in release):
//! one SPEC and one PARSEC application, each under baseline / SPB /
//! ideal-RFO at SB 14 and 56, diffed against the executable oracles;
//! then 32 fuzzing seeds with the invariant checker after every step;
//! then a *negative* control — a schedule with the test-only
//! "lost directory owner" mutation armed must be caught and minimized,
//! proving the checker can actually fail.
//!
//! `--full` runs the acceptance budget instead: every application in
//! the catalog (both suites) under all three policies at both SB
//! points, and 256 fuzzing seeds (a third of them fault-injected).
//! Any mismatch, violation, or missed mutation exits non-zero with the
//! offending diagnostic and a replay command.

use spb_sim::config::PolicyKind;
use spb_sim::SimConfig;
use spb_trace::profile::{AppCatalog, AppProfile};
use spb_verify::{check_app, minimize, run_one, run_seeds, FuzzConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let t0 = std::time::Instant::now();

    let apps: Vec<AppProfile> = if full {
        AppCatalog::standard().all().to_vec()
    } else {
        ["x264", "dedup"]
            .iter()
            .map(|n| AppProfile::by_name(n).expect("suite app"))
            .collect()
    };
    let policies = [
        PolicyKind::AtCommit,
        PolicyKind::spb_default(),
        PolicyKind::IdealSb,
    ];

    let mut failures = 0usize;
    let mut cells = 0usize;
    println!(
        "{:<12} {:<10} {:>4} {:>12} {:>7} {:>10} {:>8}",
        "app", "policy", "sb", "cycles", "ipc", "drains", "blocks"
    );
    for app in &apps {
        let mut base = SimConfig::quick();
        if app.threads() > 1 {
            // PARSEC runs 8 cores in lock-step; shrink the per-core
            // window to keep the whole-catalog sweep tractable.
            base.warmup_uops = 10_000;
            base.measure_uops = 80_000;
        }
        for policy in policies {
            for sb in [14usize, 56] {
                let cfg = base.clone().with_sb(sb).with_policy(policy);
                cells += 1;
                match check_app(app, &cfg) {
                    Ok(out) => println!(
                        "{:<12} {:<10} {:>4} {:>12} {:>7.3} {:>10} {:>8}",
                        out.run.app,
                        out.run.policy,
                        sb,
                        out.run.cycles,
                        out.run.ipc(),
                        out.drains,
                        out.blocks
                    ),
                    Err(f) => {
                        failures += 1;
                        eprintln!("FAILED {f}");
                    }
                }
            }
        }
    }
    println!(
        "differential: {}/{} cells agree with the oracles ({:.1}s)",
        cells - failures,
        cells,
        t0.elapsed().as_secs_f64()
    );

    // Fuzzing: clean seeds, then fault-injected seeds.
    let seeds: u64 = if full { 256 } else { 32 };
    let clean = seeds - seeds / 3;
    let faulty = seeds / 3;
    let base = FuzzConfig {
        seed: 1,
        steps: 2_048,
        ..FuzzConfig::default()
    };
    match run_seeds(&base, clean) {
        Ok(s) => println!(
            "fuzz: {clean} clean seeds, {} steps, {} loads / {} drains / {} prefetches / {} bursts / {} wheel wakeups, 0 violations",
            s.steps, s.loads, s.drains, s.prefetches, s.bursts, s.wakeups
        ),
        Err(f) => {
            failures += 1;
            eprintln!("FAILED fuzz (clean): {f}");
        }
    }
    let faulted = FuzzConfig {
        seed: 10_001,
        fault_rate_e4: 250,
        ..base
    };
    match run_seeds(&faulted, faulty) {
        Ok(s) => println!(
            "fuzz: {faulty} fault-injected seeds (rate 2.5%), {} steps, 0 violations",
            s.steps
        ),
        Err(f) => {
            failures += 1;
            eprintln!("FAILED fuzz (faulty): {f}");
        }
    }

    // Negative control: an armed protocol mutation MUST be caught.
    let mutated = FuzzConfig {
        seed: 3,
        steps: 1_024,
        mutate_at: Some(64),
        ..FuzzConfig::default()
    };
    match run_one(&mutated) {
        Err(f) => {
            let m = minimize(&f);
            println!(
                "mutation control: lost-owner bug caught at step {} ({}), minimized to {} steps",
                f.step,
                f.violation.split('\n').next().unwrap_or(""),
                m.minimized_steps.unwrap_or(f.step + 1)
            );
        }
        Ok(_) => {
            failures += 1;
            eprintln!(
                "FAILED mutation control: the seeded lost-owner mutation was NOT detected — \
                 the invariant checker is blind"
            );
        }
    }

    if failures > 0 {
        eprintln!("verify smoke: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!(
        "verify smoke: all checks green in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

//! Command execution for `spbsim`.

use crate::{find_app, CliError, ClientAction, Command, RunOpts, TuneCmd, VerifyCmd};
use spb_sim::config::SimConfig;
use spb_sim::suite::SuiteResult;
use spb_sim::sweep::{run_cells_supervised, Supervision, SweepRecord, SweepReport};
use spb_stats::json::Json;
use spb_stats::{chart, Table};
use spb_trace::file::{record, TraceReader};
use spb_trace::profile::{AppCatalog, Suite};
use spb_trace::{OpKind, TraceSource};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

/// Executes a parsed command; returns the process exit code.
pub fn execute(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            print!("{}", crate::USAGE);
            Ok(())
        }
        Command::Apps => apps(),
        Command::Run { app, cfg, chart } => run(&app, &cfg, chart),
        Command::Suite { suite, cfg } => suite_cmd(&suite, &cfg),
        Command::Record {
            app,
            ops,
            out,
            seed,
        } => record_cmd(&app, ops, &out, seed),
        Command::TraceInfo { path } => trace_info(&path),
        Command::Replay { trace, cfg } => replay(&trace, &cfg),
        Command::Sweep {
            app,
            sbs,
            policies,
            cfg,
            chart,
            resume,
            retry,
        } => sweep(&app, &sbs, &policies, &cfg, chart, resume, retry),
        Command::Trace { app, cfg, out } => trace_cmd(&app, &cfg, &out),
        Command::Experiment { name, quick } => experiment(&name, quick),
        Command::Verify(v) => verify(v),
        Command::Serve {
            addr,
            dir,
            jobs,
            queue,
            retry,
            deadline_ms,
        } => serve_cmd(&addr, &dir, jobs, queue, retry, deadline_ms),
        Command::Client { addr, action } => client_cmd(&addr, action),
        Command::Tune(o) => tune_cmd(&o),
        Command::Bench {
            baseline,
            kernel,
            samples,
        } => bench_cmd(&baseline, kernel, samples),
    }
}

/// `spbsim bench`: re-time the quick grid under `kernel` and print the
/// per-bench ratios and the geometric-mean speedup over `baseline`.
fn bench_cmd(baseline: &str, kernel: spb_sim::KernelMode, samples: usize) -> Result<(), CliError> {
    use spb_bench::snapshot::BenchSnapshot;
    let text = std::fs::read_to_string(baseline)
        .map_err(|e| CliError(format!("reading {baseline}: {e}")))?;
    let base = BenchSnapshot::parse(&text)
        .map_err(|e| CliError(format!("{baseline} is not a valid snapshot: {e}")))?;
    println!(
        "baseline {baseline} (kernel {}, {} benches); timing fresh grid with kernel {}...",
        base.kernel,
        base.records.len(),
        kernel.label()
    );
    let fresh = spb_bench::snapshot::record_quick_grid(kernel, samples, |rec| {
        let mops = rec
            .mops_per_sec()
            .map_or_else(|| "-".into(), |m| format!("{m:.2}"));
        println!("{:<44} {:>9.2}ms  {mops} Mops/s", rec.name, rec.median_ns() / 1e6);
    });
    for b in &base.records {
        if let Some(n) = fresh.records.iter().find(|r| r.name == b.name) {
            println!(
                "{:<44} {:>9.2}ms -> {:>9.2}ms  ({:>5.2}x)",
                b.name,
                b.min_ns() as f64 / 1e6,
                n.min_ns() as f64 / 1e6,
                b.min_ns() as f64 / (n.min_ns() as f64).max(1.0)
            );
        }
    }
    match base.geomean_speedup(&fresh) {
        Some(g) => println!("geomean speedup over {baseline}: {g:.2}x"),
        None => println!("geomean speedup: no common benchmarks"),
    }
    if let (Some(b), Some(n)) = (base.geomean_mops(), fresh.geomean_mops()) {
        println!("geomean throughput: {b:.3} -> {n:.3} Mops/s");
    }
    Ok(())
}

/// Resolves the `--apps` spelling of `spbsim tune`.
///
/// Cache entries are keyed by app *name*, and `x264` exists in both
/// suites, so every spelling resolves to the same profile `by_name`
/// would pick (SPEC first) — the tuner must never write a cell under a
/// name that a later name-resolved lookup would read as a different
/// profile.
fn resolve_tune_apps(spec: &str) -> Result<Vec<spb_trace::profile::AppProfile>, CliError> {
    let catalog = AppCatalog::standard();
    match spec {
        "sb-bound" => Ok(catalog.sb_bound(Suite::Spec2017)),
        "spec" => Ok(catalog.suite(Suite::Spec2017)),
        list => list.split(',').map(find_app).collect(),
    }
}

/// `spbsim tune`: explore the policy design space through the
/// content-addressed cell cache and report the Pareto frontier.
fn tune_cmd(o: &TuneCmd) -> Result<(), CliError> {
    let apps = resolve_tune_apps(&o.apps)?;
    if apps.is_empty() {
        return Err(CliError(format!("--apps {:?} matches no applications", o.apps)));
    }
    let mut base_cfg = match o.budget.as_str() {
        "paper" => SimConfig::paper_default(),
        _ => SimConfig::quick(),
    };
    if let Some(w) = o.warmup {
        base_cfg.warmup_uops = w;
    }
    if let Some(u) = o.uops {
        base_cfg.measure_uops = u;
    }
    let mut space = spb_tune::TuneSpace::default();
    if let Some(sbs) = &o.sbs {
        space.sb = sbs.clone();
    }
    let sweep = match o.jobs {
        Some(n) => spb_sim::sweep::SweepOptions::with_jobs(n),
        None => spb_sim::sweep::SweepOptions::from_env(),
    };
    let opts = spb_tune::TuneOptions {
        strategy: o.strategy,
        seed: o.seed,
        points: o.points,
        space,
        base_cfg: base_cfg.clone(),
        apps: apps.clone(),
        sweep,
        supervision: Supervision::with_retries(o.retry),
    };
    let cache = spb_serve::ResultCache::open(&o.cache)?;
    let outcome = spb_tune::run_tune(&opts, &cache);
    let stats = outcome.stats;
    let name = o
        .name
        .clone()
        .unwrap_or_else(|| format!("tune-{}-s{}-p{}", o.strategy.label(), o.seed, o.points));
    let report = spb_tune::TuneReport {
        name,
        strategy: o.strategy.label().into(),
        seed: o.seed,
        points_requested: o.points,
        warmup_uops: base_cfg.warmup_uops,
        measure_uops: base_cfg.measure_uops,
        workload_seed: base_cfg.seed,
        apps: apps.iter().map(|a| a.name().to_string()).collect(),
        outcome,
    };
    print!("{}", report.to_text());
    // Cache traffic goes to the terminal only — the saved report must
    // stay byte-identical between a cold and a fully cached run.
    println!("cache: {} hit(s), {} computed", stats.cache_hits, stats.computed);
    match report.save(std::path::Path::new(&o.out)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write tune report: {e}"),
    }
    if report.outcome.points.is_empty() {
        return Err(CliError(format!(
            "no point evaluated successfully ({} failed)",
            report.outcome.failed.len()
        )));
    }
    Ok(())
}

/// `spbsim serve`: run the fault-tolerant sweep service until a client
/// sends `shutdown`. Prints `serving on HOST:PORT` once the socket is
/// bound (the smoke gate parses this line to find an ephemeral port).
fn serve_cmd(
    addr: &str,
    dir: &str,
    jobs: Option<usize>,
    queue: usize,
    retry: u32,
    deadline_ms: Option<u64>,
) -> Result<(), CliError> {
    let mut cfg = spb_serve::ServeConfig::at(dir);
    cfg.addr = addr.to_string();
    if let Some(j) = jobs {
        cfg.jobs = j.max(1);
    }
    cfg.queue_limit = queue;
    cfg.retry = retry;
    if deadline_ms.is_some() {
        cfg.deadline_ms = deadline_ms;
    }
    let server = spb_serve::Server::bind(cfg).map_err(|e| CliError(format!("serve: {e}")))?;
    let recovered = server.stats().get("jobs_recovered");
    if recovered > 0 {
        println!("recovered {recovered} journaled job(s); running them before new work");
    }
    let corrupt = server.stats().get("journal_corrupt_lines");
    if corrupt > 0 {
        println!("quarantined {corrupt} corrupt journal line(s) to {dir}/journal.waj.corrupt");
    }
    println!("serving on {}", server.addr()?);
    std::io::stdout().flush()?;
    server.serve()?;
    println!("server stopped");
    Ok(())
}

/// `spbsim client …`: one-shot requests against a running service.
fn client_cmd(addr: &str, action: ClientAction) -> Result<(), CliError> {
    match action {
        ClientAction::Health => {
            let health = spb_serve::client::health(addr).map_err(CliError)?;
            println!("{health:#}");
        }
        ClientAction::Shutdown => {
            spb_serve::client::shutdown(addr).map_err(CliError)?;
            println!("server at {addr} is shutting down");
        }
        ClientAction::Sweep { job, out } => {
            let cells = job.cells.len();
            eprintln!("submitting {:?} ({cells} cells) to {addr}", job.name);
            let reply = spb_serve::client::submit(addr, &job).map_err(CliError)?;
            let stats = reply.get("stats").cloned().unwrap_or(Json::Null);
            println!("{} done: {stats}", job.name);
            if let Some(path) = out {
                let report = reply
                    .get("report")
                    .ok_or_else(|| CliError("reply missing the report".into()))?;
                std::fs::write(&path, format!("{report:#}\n"))?;
                println!("wrote {path}");
            }
            let failed = stats.get("failed").and_then(Json::as_u64).unwrap_or(0);
            if failed > 0 {
                return Err(CliError(format!(
                    "{failed} cell(s) failed; see the report's failed array"
                )));
            }
        }
    }
    Ok(())
}

/// `spbsim verify fuzz` / `spbsim verify oracle`.
fn verify(cmd: VerifyCmd) -> Result<(), CliError> {
    match cmd {
        VerifyCmd::Fuzz { config, count } => match spb_verify::run_seeds(&config, count) {
            Ok(s) => {
                println!(
                    "fuzz: {count} seed(s) from {} clean — {} steps, {} loads, {} drains, \
                     {} prefetches, {} bursts, {} cycles, 0 violations",
                    config.seed, s.steps, s.loads, s.drains, s.prefetches, s.bursts, s.cycles
                );
                Ok(())
            }
            Err(f) => Err(CliError(format!("{f}"))),
        },
        VerifyCmd::Oracle { app, cfg } => {
            let profile = find_app(&app)?;
            let sim_cfg = cfg.to_sim_config();
            match spb_verify::check_app(&profile, &sim_cfg) {
                Ok(out) => {
                    let totals = out.oracle.measured_totals();
                    println!(
                        "oracle: {} / {} / sb={} agrees — {} µops ({} stores, {} loads, \
                         {} branches) exactly as replayed, {} drains over {} blocks within \
                         bounds, cycles {} ≥ lower bound {}",
                        out.run.app,
                        out.run.policy,
                        out.run.sb_entries,
                        out.run.uops,
                        totals.stores,
                        totals.loads,
                        totals.branches,
                        out.drains,
                        out.blocks,
                        out.run.cycles,
                        out.oracle.min_cycles,
                    );
                    Ok(())
                }
                Err(f) => Err(CliError(format!("{f}"))),
            }
        }
    }
}

fn sweep(
    app: &str,
    sbs: &[usize],
    policies: &[spb_sim::PolicyKind],
    opts: &RunOpts,
    with_chart: bool,
    resume: bool,
    retry: u32,
) -> Result<(), CliError> {
    let profile = find_app(app)?;
    let name = format!("sweep-{app}");

    // With --resume, reload the prior (possibly partial) report; its
    // completed cells are reused verbatim and only the rest re-run.
    let prior = if resume {
        let path = std::path::Path::new("results").join(format!("{name}.json"));
        match std::fs::read_to_string(&path) {
            Ok(text) => Some(
                SweepReport::parse(&text)
                    .map_err(|e| CliError(format!("cannot resume from {}: {e}", path.display())))?,
            ),
            Err(e) => {
                eprintln!(
                    "note: no prior report at {} ({e}); running the full sweep",
                    path.display()
                );
                None
            }
        }
    } else {
        None
    };

    // Flatten the sb × policy grid into one cell list (SB-major, policy
    // minor) so the worker pool covers the whole sweep at once.
    let grid: Vec<SimConfig> = sbs
        .iter()
        .flat_map(|&sb| {
            policies.iter().map(move |&policy| {
                let mut cfg = opts.to_sim_config().with_sb(sb);
                cfg.policy = policy;
                cfg
            })
        })
        .collect();
    let todo: Vec<SimConfig> = grid
        .iter()
        .filter(|c| {
            prior
                .as_ref()
                .is_none_or(|p| !p.has_record(app, &c.policy.label(), c.effective_sb()))
        })
        .cloned()
        .collect();
    if prior.is_some() {
        eprintln!(
            "resuming {name}: {} of {} cells already done",
            grid.len() - todo.len(),
            grid.len()
        );
    }
    let cells: Vec<_> = todo.iter().map(|c| (&profile, c.clone())).collect();
    // With --retry N, transiently failing cells (panics, deadline
    // overruns) re-run up to N total attempts with deterministic
    // backoff; invariant violations still fail fast. The attempt count
    // lands in each failure record. retry == 1 is the old single-shot
    // behavior.
    let results: Vec<_> = run_cells_supervised(
        &cells,
        &opts.sweep_options().progress(true),
        &Supervision::with_retries(retry),
    )
    .into_iter()
    .map(|(outcome, _attempts)| outcome)
    .collect();

    // Merge reused and fresh cells back into grid order. `todo`
    // preserves grid order, so one forward iterator pairs each missing
    // cell with its result.
    let mut new_it = results.iter();
    let mut records: Vec<SweepRecord> = Vec::new();
    let mut failed = Vec::new();
    let mut fresh_runs = Vec::new();
    for c in &grid {
        let policy = c.policy.label();
        let sb = c.effective_sb();
        let reused = prior.as_ref().and_then(|p| {
            p.records
                .iter()
                .find(|r| r.app == app && r.policy == policy && r.sb == sb)
        });
        if let Some(r) = reused {
            records.push(r.clone());
        } else {
            match new_it.next().expect("one result per missing cell") {
                Ok(run) => {
                    records.push(SweepRecord::from_run(run));
                    fresh_runs.push(run);
                }
                Err(f) => failed.push(f.clone()),
            }
        }
    }

    if fresh_runs.len() == grid.len() {
        // A complete fresh sweep: the detailed tables need the full
        // RunResult stats, which reused records no longer carry.
        let labels: Vec<String> = policies.iter().map(|p| p.label()).collect();
        let cols: Vec<&str> = labels.iter().map(String::as_str).collect();
        let mut cycles_t = Table::new(format!("{app} — cycles"), &cols);
        let mut stall_t = Table::new(format!("{app} — SB-stall %"), &cols);
        for (i, &sb) in sbs.iter().enumerate() {
            let row = &fresh_runs[i * policies.len()..(i + 1) * policies.len()];
            cycles_t.push_row(
                format!("SB{sb}"),
                &row.iter().map(|r| r.cycles as f64).collect::<Vec<_>>(),
            );
            stall_t.push_row(
                format!("SB{sb}"),
                &row.iter()
                    .map(|r| r.sb_stall_ratio() * 100.0)
                    .collect::<Vec<_>>(),
            );
        }
        cycles_t.set_precision(0);
        stall_t.set_precision(1);
        println!("{cycles_t}");
        println!("{stall_t}");
        if with_chart {
            print!("{}", chart::render_all(&stall_t, None));
        }
    } else {
        // Resumed or partially failed: summarize from the records.
        for r in &records {
            println!(
                "{} {} sb={}: {} cycles, ipc {:.3}",
                r.app, r.policy, r.sb, r.cycles, r.ipc
            );
        }
    }

    let mut reg = spb_obs::MetricsRegistry::new();
    let total_wall: f64 = records.iter().map(|r| r.wall_ms).sum();
    reg.component("sweep")
        .counter("cells", grid.len() as u64)
        .counter("fresh", fresh_runs.len() as u64)
        .counter("failures", failed.len() as u64)
        .gauge("wall_ms", total_wall)
        .gauge("jobs", opts.sweep_options().jobs as f64);
    let report = SweepReport {
        name,
        records,
        failed: failed.clone(),
        metrics: Some(reg.to_json()),
    };
    save_report(&report);
    if !failed.is_empty() {
        return Err(CliError(format!(
            "{} of {} cell(s) failed (the rest are saved; re-run with --resume to retry):\n  {}",
            failed.len(),
            grid.len(),
            failed
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n  ")
        )));
    }
    Ok(())
}

/// Writes a sweep report under `results/`, warning (not failing) if the
/// directory is unwritable.
fn save_report(report: &SweepReport) {
    match report.save(std::path::Path::new("results")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write sweep report: {e}"),
    }
}

fn apps() -> Result<(), CliError> {
    let catalog = AppCatalog::standard();
    println!("SPEC CPU 2017 profiles:");
    for p in catalog.suite(Suite::Spec2017) {
        println!(
            "  {:<12} {}",
            p.name(),
            if p.is_sb_bound() { "SB-bound" } else { "" }
        );
    }
    println!("\nPARSEC profiles (8 threads):");
    for p in catalog.suite(Suite::Parsec) {
        println!(
            "  {:<14} {}",
            p.name(),
            if p.is_sb_bound() { "SB-bound" } else { "" }
        );
    }
    Ok(())
}

fn run(app: &str, opts: &RunOpts, with_chart: bool) -> Result<(), CliError> {
    let profile = find_app(app)?;
    let result = spb_sim::Simulation::with_config(&profile, &opts.to_sim_config()).run_or_panic();
    print!("{}", spb_sim::report::render(&result));
    println!(
        "EDP: {:.3e} nJ·cycles ({:.1} nJ over {} cycles)",
        result.energy.edp(result.cycles),
        result.energy.total_nj(),
        result.cycles
    );
    if with_chart {
        let mut t = Table::new("headline", &["value"]);
        t.push_row("IPC", &[result.ipc()]);
        t.push_row("SB-stall %", &[result.sb_stall_ratio() * 100.0]);
        let pf_ok: u64 = result.mem.prefetch_successful.iter().sum();
        let pf_all: u64 = result.mem.prefetch_requests.iter().sum();
        t.push_row(
            "pf success %",
            &[100.0 * pf_ok as f64 / pf_all.max(1) as f64],
        );
        if let Some(art) = chart::render_column(&t, "value", None) {
            println!("\n{art}");
        }
    }
    Ok(())
}

/// `spbsim trace`: re-run one application with the observability layer
/// attached and export a Chrome `trace_event` JSON plus a text summary.
/// Observation is read-only, so the simulated numbers are identical to
/// an untraced `spbsim run` at the same configuration.
fn trace_cmd(app: &str, opts: &RunOpts, out: &str) -> Result<(), CliError> {
    let profile = find_app(app)?;
    let collector = spb_obs::Collector::new();
    let result = spb_sim::Simulation::with_config(&profile, &opts.to_sim_config())
        .observe(collector.clone())
        .run_or_panic();
    let events = collector.take();
    let trace = spb_obs::chrome_trace(&events);
    std::fs::write(out, format!("{trace:#}"))?;
    println!(
        "{app} @ {} sb={}: {} cycles, ipc {:.3}",
        opts.policy.label(),
        opts.sb,
        result.cycles,
        result.ipc()
    );
    print!("{}", spb_obs::text_summary(&events));
    println!(
        "wrote {out} ({} events; open at chrome://tracing or ui.perfetto.dev)",
        events.len()
    );
    Ok(())
}

fn suite_cmd(suite: &str, opts: &RunOpts) -> Result<(), CliError> {
    let Some(apps) = AppCatalog::standard().suite_named(suite) else {
        return Err(CliError(format!(
            "unknown suite {suite:?} (expected spec | parsec)"
        )));
    };
    let results = SuiteResult::run_with(
        &apps,
        &opts.to_sim_config(),
        &opts.sweep_options().progress(true),
    );
    let mut t = Table::new(
        format!("{suite} suite — {} @ SB{}", opts.policy.label(), opts.sb),
        &["cycles", "IPC", "SB-stall %"],
    );
    for r in &results.runs {
        t.push_row(
            r.app.clone(),
            &[r.cycles as f64, r.ipc(), r.sb_stall_ratio() * 100.0],
        );
    }
    t.set_precision(2);
    println!("{t}");
    println!(
        "geomean IPC: all {:.3}, SB-bound {:.3}",
        results.geomean_all(|r| r.ipc()),
        results.geomean_sb_bound(|r| r.ipc())
    );
    save_report(&SweepReport::new(
        format!("suite-{suite}-{}-sb{}", opts.policy.label(), opts.sb),
        &results.runs,
    ));
    Ok(())
}

fn record_cmd(app: &str, ops: u64, out: &str, seed: u64) -> Result<(), CliError> {
    let profile = find_app(app)?;
    let mut source = profile.build(seed);
    let file = File::create(out)?;
    let n = record(&mut source, BufWriter::new(file), ops)?;
    println!("recorded {n} ops of {app} (seed {seed}) to {out}");
    Ok(())
}

fn trace_info(path: &str) -> Result<(), CliError> {
    let file = File::open(path)?;
    let mut reader = TraceReader::new(BufReader::new(file))
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    println!("{path}: {} ops", reader.len());
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    let mut alu = 0u64;
    let mut store_blocks = std::collections::BTreeSet::new();
    while let Some(op) = reader.next_op() {
        match op.kind() {
            OpKind::Load { .. } => loads += 1,
            OpKind::Store { .. } => {
                stores += 1;
                if let Some(b) = op.block() {
                    store_blocks.insert(b);
                }
            }
            OpKind::Branch { .. } => branches += 1,
            _ => alu += 1,
        }
    }
    let total = (loads + stores + branches + alu).max(1);
    println!(
        "  alu      {alu:>10} ({:>5.1}%)",
        100.0 * alu as f64 / total as f64
    );
    println!(
        "  loads    {loads:>10} ({:>5.1}%)",
        100.0 * loads as f64 / total as f64
    );
    println!(
        "  stores   {stores:>10} ({:>5.1}%)",
        100.0 * stores as f64 / total as f64
    );
    println!(
        "  branches {branches:>10} ({:>5.1}%)",
        100.0 * branches as f64 / total as f64
    );
    println!("  distinct store blocks: {}", store_blocks.len());
    Ok(())
}

fn replay(path: &str, opts: &RunOpts) -> Result<(), CliError> {
    use spb_cpu::core::Core;
    use spb_mem::MemorySystem;
    let file = File::open(path)?;
    let reader = TraceReader::new(BufReader::new(file))
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let cfg = opts.to_sim_config();
    let mut mem = MemorySystem::new(cfg.mem.clone());
    let mut core_cfg = cfg.core;
    if let Some(sb) = cfg.policy.sb_override() {
        core_cfg.sb_entries = sb;
    }
    let mut core = Core::new(0, core_cfg, Box::new(reader), cfg.policy.build());
    let mut now = 0u64;
    while !core.is_drained() {
        mem.tick(now);
        core.cycle(&mut mem, now);
        now += 1;
    }
    mem.finalize_stats();
    println!(
        "replayed {path}: {} µops in {now} cycles (IPC {:.3}, SB stalls {:.1}%)",
        core.committed_uops(),
        core.committed_uops() as f64 / now as f64,
        core.topdown().sb_stall_ratio() * 100.0
    );
    Ok(())
}

fn experiment(name: &str, quick: bool) -> Result<(), CliError> {
    use spb_experiments as exp;
    let budget = if quick {
        exp::Budget::Quick
    } else {
        exp::Budget::Paper
    };
    let Some(def) = exp::registry::find(name) else {
        return Err(CliError(format!(
            "unknown experiment {name:?}; known: {}",
            exp::registry::known_ids()
        )));
    };
    eprintln!("{}: {}", def.title, def.claim);
    exp::print_tables(&(def.run)(budget));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn apps_listing_runs() {
        assert!(execute(Command::Apps).is_ok());
    }

    #[test]
    fn record_info_replay_round_trip() {
        let dir = std::env::temp_dir().join("spbsim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gcc.spbt");
        let path_str = path.to_str().unwrap();

        execute(
            parse([
                "record", "--app", "gcc", "--ops", "20000", "--out", path_str,
            ])
            .unwrap(),
        )
        .unwrap();
        execute(parse(["trace-info", path_str]).unwrap()).unwrap();
        execute(
            parse([
                "replay", "--trace", path_str, "--policy", "spb", "--sb", "14",
            ])
            .unwrap(),
        )
        .unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn unknown_suite_is_an_error() {
        let err = execute(Command::Suite {
            suite: "nope".into(),
            cfg: RunOpts::default(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown suite"));
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let err = execute(Command::Experiment {
            name: "fig99".into(),
            quick: true,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
    }

    #[test]
    fn unknown_experiment_error_lists_valid_choices() {
        let err = execute(Command::Experiment {
            name: "fig99".into(),
            quick: true,
        })
        .unwrap_err();
        let msg = err.to_string();
        for id in ["fig05", "tab1", "variance"] {
            assert!(msg.contains(id), "error {msg:?} does not offer {id}");
        }
    }

    #[test]
    fn unknown_app_error_lists_valid_choices() {
        let err = execute(Command::Run {
            app: "quake".into(),
            cfg: RunOpts::default(),
            chart: false,
        })
        .unwrap_err();
        let msg = err.to_string();
        for name in ["x264", "bwaves", "dedup"] {
            assert!(msg.contains(name), "error {msg:?} does not offer {name}");
        }
        // Same for the verify oracle path.
        let err = execute(Command::Verify(VerifyCmd::Oracle {
            app: "quake".into(),
            cfg: RunOpts::default(),
        }))
        .unwrap_err();
        assert!(err.to_string().contains("x264"));
    }

    #[test]
    fn verify_fuzz_runs_a_clean_seed_and_reports_a_mutated_one() {
        let clean = spb_verify::FuzzConfig {
            seed: 5,
            steps: 256,
            ..spb_verify::FuzzConfig::default()
        };
        assert!(execute(Command::Verify(VerifyCmd::Fuzz {
            config: clean,
            count: 1,
        }))
        .is_ok());

        let mutated = spb_verify::FuzzConfig {
            mutate_at: Some(64),
            steps: 1_024,
            ..clean
        };
        let err = execute(Command::Verify(VerifyCmd::Fuzz {
            config: mutated,
            count: 1,
        }))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("replay: spbsim verify fuzz"), "{msg}");
        assert!(msg.contains("--mutate-at 64"), "{msg}");
    }
}

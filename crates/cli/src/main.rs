//! `spbsim` — command-line front end for the SPB simulator.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let result = spb_cli::parse(refs).and_then(spb_cli::commands::execute);
    if let Err(e) = result {
        eprintln!("spbsim: {e}");
        std::process::exit(2);
    }
}

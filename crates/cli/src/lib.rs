//! Implementation of the `spbsim` command-line tool.
//!
//! Kept as a library so the argument parsing and command dispatch are
//! unit-testable; `main.rs` is a two-line shim. No external argument
//! parser: the surface is small and stable.
//!
//! ```text
//! spbsim apps
//! spbsim run --app x264 [--policy spb] [--sb 14] [--uops 300000] [--chart]
//! spbsim suite --suite spec [--policy spb] [--sb 14]
//! spbsim record --app x264 --ops 100000 --out x264.spbt
//! spbsim trace-info x264.spbt
//! spbsim replay --trace x264.spbt [--policy spb] [--sb 14]
//! spbsim trace --app x264 --policy spb --out trace.json
//! spbsim experiment fig05 [--quick]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spb_sim::config::{KernelMode, PolicyKind, SimConfig};
use spb_trace::profile::AppProfile;
use spb_trace::SquashConfig;
use std::fmt;

pub mod commands;

/// A fatal CLI error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List every application profile.
    Apps,
    /// Run one application and print a report.
    Run {
        /// Application name.
        app: String,
        /// Run configuration.
        cfg: RunOpts,
        /// Also render bar charts of the headline numbers.
        chart: bool,
    },
    /// Run a whole suite and print a summary table.
    Suite {
        /// `spec` or `parsec`.
        suite: String,
        /// Run configuration.
        cfg: RunOpts,
    },
    /// Record an application's trace to a file.
    Record {
        /// Application name.
        app: String,
        /// Ops to record.
        ops: u64,
        /// Output path.
        out: String,
        /// Workload seed.
        seed: u64,
    },
    /// Print a trace file's header and op mix.
    TraceInfo {
        /// Trace path.
        path: String,
    },
    /// Replay a recorded trace through the simulator.
    Replay {
        /// Trace path.
        trace: String,
        /// Run configuration.
        cfg: RunOpts,
    },
    /// Sweep SB sizes × policies for one application.
    Sweep {
        /// Application name.
        app: String,
        /// SB sizes to sweep.
        sbs: Vec<usize>,
        /// Policies to sweep.
        policies: Vec<PolicyKind>,
        /// Base run configuration.
        cfg: RunOpts,
        /// Render bar charts.
        chart: bool,
        /// Reuse completed cells from the existing report under
        /// `results/`, re-running only missing or failed cells.
        resume: bool,
        /// Total attempts per cell (1 = fail on the first transient
        /// error, as before). Attempt counts are recorded in the
        /// report's failure records.
        retry: u32,
    },
    /// Run one application with event tracing on and export a Chrome
    /// `trace_event` JSON file plus a text summary.
    Trace {
        /// Application name.
        app: String,
        /// Run configuration.
        cfg: RunOpts,
        /// Output path for the Chrome trace JSON.
        out: String,
    },
    /// Regenerate a paper experiment by name.
    Experiment {
        /// Experiment name (fig01..fig18, tab1, sens_n, sb20, …).
        name: String,
        /// Use the quick budget.
        quick: bool,
    },
    /// Replay coherence-fuzzer schedules (`verify fuzz`) or diff one
    /// application against the executable oracles (`verify oracle`).
    Verify(VerifyCmd),
    /// Run the fault-tolerant sweep service (blocks until a client
    /// sends `shutdown`).
    Serve {
        /// Listen address (`host:port`; port 0 picks an ephemeral one).
        addr: String,
        /// State directory for the cache, journal and saved reports.
        dir: String,
        /// Worker threads per sweep (`None` = all cores).
        jobs: Option<usize>,
        /// Queued jobs beyond which submissions are shed.
        queue: usize,
        /// Default total attempts per cell.
        retry: u32,
        /// Per-attempt cell deadline in milliseconds (`None` = the
        /// server default of 5 minutes).
        deadline_ms: Option<u64>,
    },
    /// Talk to a running sweep service.
    Client {
        /// Server address (`host:port`).
        addr: String,
        /// What to ask the server.
        action: ClientAction,
    },
    /// Explore the parameterized policy design space and report the
    /// Pareto frontier (cycles × energy × coherence traffic).
    Tune(TuneCmd),
    /// Re-time the quick benchmark grid and print the geometric-mean
    /// speedup against a committed `spb-bench-v1` snapshot.
    Bench {
        /// Baseline snapshot path (e.g. `BENCH_PR9.json`).
        baseline: String,
        /// Execution kernel to time.
        kernel: KernelMode,
        /// Timed samples per cell.
        samples: usize,
    },
    /// Print usage.
    Help,
}

/// Options for `spbsim tune`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneCmd {
    /// Candidate-selection strategy.
    pub strategy: spb_tune::Strategy,
    /// Sampling seed.
    pub seed: u64,
    /// Candidate points (0 = the whole space).
    pub points: usize,
    /// App-set spelling: `sb-bound` (the paper's SPEC SB-bound set),
    /// `spec`, or a comma list of names.
    pub apps: String,
    /// SB-size override for the space (default 14, 28, 56).
    pub sbs: Option<Vec<usize>>,
    /// Per-cell budget: `quick` or `paper`.
    pub budget: String,
    /// Warm-up override (µops).
    pub warmup: Option<u64>,
    /// Measured-µops override.
    pub uops: Option<u64>,
    /// Content-addressed cell-cache directory.
    pub cache: String,
    /// Report output directory.
    pub out: String,
    /// Report name (default `tune-{strategy}-s{seed}-p{points}`).
    pub name: Option<String>,
    /// Worker threads for cache misses.
    pub jobs: Option<usize>,
    /// Total attempts per cell.
    pub retry: u32,
}

impl Default for TuneCmd {
    fn default() -> Self {
        Self {
            strategy: spb_tune::Strategy::Grid,
            seed: 42,
            points: 60,
            // The three most SB-bound cross-suite apps: enough signal
            // to rank policies without paying for a full-suite cell.
            apps: "bwaves,x264,roms".into(),
            sbs: None,
            budget: "quick".into(),
            warmup: None,
            uops: None,
            cache: "tune-state/cache".into(),
            out: "results".into(),
            name: None,
            jobs: None,
            retry: 3,
        }
    }
}

/// The `client` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Submit a sweep job and wait for its report.
    Sweep {
        /// The job to submit.
        job: spb_serve::JobSpec,
        /// Write the returned (checksummed) report JSON here.
        out: Option<String>,
    },
    /// Fetch the health/stats snapshot.
    Health,
    /// Ask the server to shut down.
    Shutdown,
}

/// The `verify` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyCmd {
    /// Run (or replay) interleaving-fuzzer schedules.
    Fuzz {
        /// Base schedule; failures print a replay command with these
        /// exact parameters.
        config: spb_verify::FuzzConfig,
        /// Consecutive seeds to run starting at `config.seed`.
        count: u64,
    },
    /// Differential check of one application against the oracles.
    Oracle {
        /// Application name.
        app: String,
        /// Run configuration.
        cfg: RunOpts,
    },
}

/// Options shared by run-like commands.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Store-prefetch policy.
    pub policy: PolicyKind,
    /// SB entries.
    pub sb: usize,
    /// Measured µops.
    pub uops: u64,
    /// Warm-up µops.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for sweeps (`None` = `SPB_JOBS` or all cores).
    pub jobs: Option<usize>,
    /// Uniform fault-injection rate for the memory system (0 = off).
    pub fault_rate: f64,
    /// Fault-injection seed (independent of the workload seed).
    pub fault_seed: u64,
    /// Execution kernel (push-based `wheel` by default; `event` and
    /// `tick` keep the earlier kernels as equivalence references).
    pub kernel: KernelMode,
    /// Wrong-path squash model (`SquashConfig::none()` = off).
    pub squash: SquashConfig,
}

impl Default for RunOpts {
    fn default() -> Self {
        let d = SimConfig::paper_default();
        Self {
            policy: PolicyKind::AtCommit,
            sb: 56,
            uops: d.measure_uops,
            warmup: d.warmup_uops,
            seed: d.seed,
            jobs: None,
            fault_rate: 0.0,
            fault_seed: 1,
            kernel: KernelMode::Wheel,
            squash: SquashConfig::none(),
        }
    }
}

impl RunOpts {
    /// Converts to a [`SimConfig`].
    pub fn to_sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_default()
            .with_sb(self.sb)
            .with_policy(self.policy);
        cfg.measure_uops = self.uops;
        cfg.warmup_uops = self.warmup;
        cfg.seed = self.seed;
        cfg.kernel = self.kernel;
        cfg.squash = self.squash;
        if self.fault_rate > 0.0 {
            cfg.mem.fault = spb_mem::FaultConfig::uniform(self.fault_rate, self.fault_seed);
        }
        cfg
    }

    /// Sweep options: `--jobs` if given, else `SPB_JOBS`/auto.
    pub fn sweep_options(&self) -> spb_sim::sweep::SweepOptions {
        match self.jobs {
            Some(n) => spb_sim::sweep::SweepOptions::with_jobs(n),
            None => spb_sim::sweep::SweepOptions::from_env(),
        }
    }
}

/// Parses a policy name (one spelling table for the CLI, the wire
/// protocol, and the library: [`PolicyKind::parse`]).
pub fn parse_policy(s: &str) -> Result<PolicyKind, CliError> {
    PolicyKind::parse(s).map_err(CliError)
}

fn take_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, CliError> {
    it.next()
        .ok_or_else(|| CliError(format!("{flag} requires a value")))
}

fn parse_run_opts<'a>(
    args: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    opts: &mut RunOpts,
) -> Result<Vec<String>, CliError> {
    let mut leftovers = Vec::new();
    while let Some(&a) = args.peek() {
        match a {
            "--policy" => {
                args.next();
                opts.policy = parse_policy(take_value("--policy", args)?)?;
            }
            "--sb" => {
                args.next();
                let v = take_value("--sb", args)?;
                opts.sb = v
                    .parse()
                    .map_err(|_| CliError(format!("--sb expects a number, got {v:?}")))?;
            }
            "--uops" => {
                args.next();
                let v = take_value("--uops", args)?;
                opts.uops = v
                    .parse()
                    .map_err(|_| CliError(format!("--uops expects a number, got {v:?}")))?;
            }
            "--warmup" => {
                args.next();
                let v = take_value("--warmup", args)?;
                opts.warmup = v
                    .parse()
                    .map_err(|_| CliError(format!("--warmup expects a number, got {v:?}")))?;
            }
            "--seed" => {
                args.next();
                let v = take_value("--seed", args)?;
                opts.seed = v
                    .parse()
                    .map_err(|_| CliError(format!("--seed expects a number, got {v:?}")))?;
            }
            "--jobs" => {
                args.next();
                let v = take_value("--jobs", args)?;
                opts.jobs = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("--jobs expects a number, got {v:?}")))?,
                );
            }
            "--fault-rate" => {
                args.next();
                let v = take_value("--fault-rate", args)?;
                opts.fault_rate = v
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        CliError(format!("--fault-rate expects a number in [0,1], got {v:?}"))
                    })?;
            }
            "--fault-seed" => {
                args.next();
                let v = take_value("--fault-seed", args)?;
                opts.fault_seed = v
                    .parse()
                    .map_err(|_| CliError(format!("--fault-seed expects a number, got {v:?}")))?;
            }
            "--kernel" => {
                args.next();
                let v = take_value("--kernel", args)?;
                opts.kernel = KernelMode::parse(v).map_err(|e| CliError(format!("--kernel: {e}")))?;
            }
            "--squash" => {
                args.next();
                let v = take_value("--squash", args)?;
                opts.squash =
                    SquashConfig::parse(v).map_err(|e| CliError(format!("--squash: {e}")))?;
            }
            _ => {
                leftovers.push(args.next().unwrap().to_string());
            }
        }
    }
    Ok(leftovers)
}

/// Parses an argument vector (without the program name).
pub fn parse<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Command, CliError> {
    let mut it = args.into_iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "apps" => Ok(Command::Apps),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" => {
            let mut opts = RunOpts::default();
            let mut app = None;
            let mut chart = false;
            let rest = parse_run_opts(&mut it, &mut opts)?;
            let mut rest_it = rest.iter();
            while let Some(a) = rest_it.next() {
                match a.as_str() {
                    "--app" => app = rest_it.next().cloned(),
                    "--chart" => chart = true,
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            let app = app.ok_or_else(|| CliError("run requires --app NAME".into()))?;
            Ok(Command::Run {
                app,
                cfg: opts,
                chart,
            })
        }
        "suite" => {
            let mut opts = RunOpts::default();
            let mut suite = None;
            let rest = parse_run_opts(&mut it, &mut opts)?;
            let mut rest_it = rest.iter();
            while let Some(a) = rest_it.next() {
                match a.as_str() {
                    "--suite" => suite = rest_it.next().cloned(),
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Suite {
                suite: suite.unwrap_or_else(|| "spec".into()),
                cfg: opts,
            })
        }
        "record" => {
            let mut app = None;
            let mut ops = 100_000u64;
            let mut out = None;
            let mut seed = 42u64;
            while let Some(a) = it.next() {
                match a {
                    "--app" => app = it.next().map(str::to_string),
                    "--ops" => {
                        let v = take_value("--ops", &mut it)?;
                        ops = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --ops {v:?}")))?;
                    }
                    "--out" => out = it.next().map(str::to_string),
                    "--seed" => {
                        let v = take_value("--seed", &mut it)?;
                        seed = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --seed {v:?}")))?;
                    }
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Record {
                app: app.ok_or_else(|| CliError("record requires --app NAME".into()))?,
                ops,
                out: out.ok_or_else(|| CliError("record requires --out FILE".into()))?,
                seed,
            })
        }
        "trace-info" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("trace-info requires a path".into()))?;
            Ok(Command::TraceInfo { path: path.into() })
        }
        "replay" => {
            let mut opts = RunOpts::default();
            let mut trace = None;
            let rest = parse_run_opts(&mut it, &mut opts)?;
            let mut rest_it = rest.iter();
            while let Some(a) = rest_it.next() {
                match a.as_str() {
                    "--trace" => trace = rest_it.next().cloned(),
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Replay {
                trace: trace.ok_or_else(|| CliError("replay requires --trace FILE".into()))?,
                cfg: opts,
            })
        }
        "sweep" => {
            let mut opts = RunOpts::default();
            let mut app = None;
            let mut sbs = vec![14, 20, 28, 56];
            let mut policies = vec![PolicyKind::AtCommit, PolicyKind::spb_default()];
            let mut chart = false;
            let mut resume = false;
            let mut retry = 1u32;
            // Note: --sb/--policy are consumed here as comma lists, so
            // bypass parse_run_opts for those two flags.
            while let Some(a) = it.next() {
                match a {
                    "--app" => app = it.next().map(str::to_string),
                    "--chart" => chart = true,
                    "--resume" => resume = true,
                    "--retry" => {
                        let v = take_value("--retry", &mut it)?;
                        retry = v
                            .parse::<u32>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| CliError(format!("bad --retry {v:?} (expects ≥ 1)")))?;
                    }
                    "--fault-rate" => {
                        let v = take_value("--fault-rate", &mut it)?;
                        opts.fault_rate = v
                            .parse::<f64>()
                            .ok()
                            .filter(|r| (0.0..=1.0).contains(r))
                            .ok_or_else(|| CliError(format!("bad --fault-rate {v:?}")))?;
                    }
                    "--fault-seed" => {
                        let v = take_value("--fault-seed", &mut it)?;
                        opts.fault_seed = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --fault-seed {v:?}")))?;
                    }
                    "--sb" => {
                        let v = take_value("--sb", &mut it)?;
                        sbs = v
                            .split(',')
                            .map(|x| {
                                x.parse()
                                    .map_err(|_| CliError(format!("bad SB size {x:?}")))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--policy" => {
                        let v = take_value("--policy", &mut it)?;
                        policies = v.split(',').map(parse_policy).collect::<Result<_, _>>()?;
                    }
                    "--uops" => {
                        let v = take_value("--uops", &mut it)?;
                        opts.uops = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --uops {v:?}")))?;
                    }
                    "--warmup" => {
                        let v = take_value("--warmup", &mut it)?;
                        opts.warmup = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --warmup {v:?}")))?;
                    }
                    "--seed" => {
                        let v = take_value("--seed", &mut it)?;
                        opts.seed = v
                            .parse()
                            .map_err(|_| CliError(format!("bad --seed {v:?}")))?;
                    }
                    "--jobs" => {
                        let v = take_value("--jobs", &mut it)?;
                        opts.jobs = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad --jobs {v:?}")))?,
                        );
                    }
                    "--kernel" => {
                        let v = take_value("--kernel", &mut it)?;
                        opts.kernel = KernelMode::parse(v)
                            .map_err(|e| CliError(format!("--kernel: {e}")))?;
                    }
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Sweep {
                app: app.ok_or_else(|| CliError("sweep requires --app NAME".into()))?,
                sbs,
                policies,
                cfg: opts,
                chart,
                resume,
                retry,
            })
        }
        "trace" => {
            // Traces are per-cycle artifacts: default to a much smaller
            // budget than a full run so the JSON stays loadable in a
            // trace viewer. Explicit --uops/--warmup still override.
            let mut opts = RunOpts {
                warmup: 40_000,
                uops: 100_000,
                ..RunOpts::default()
            };
            let mut app = None;
            let mut out = None;
            let rest = parse_run_opts(&mut it, &mut opts)?;
            let mut rest_it = rest.iter();
            while let Some(a) = rest_it.next() {
                match a.as_str() {
                    "--app" => app = rest_it.next().cloned(),
                    "--out" => out = rest_it.next().cloned(),
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Trace {
                app: app.ok_or_else(|| CliError("trace requires --app NAME".into()))?,
                cfg: opts,
                out: out.unwrap_or_else(|| "trace.json".into()),
            })
        }
        "experiment" => {
            let name = it
                .next()
                .ok_or_else(|| CliError("experiment requires a name (e.g. fig05)".into()))?
                .to_string();
            let quick = it.any(|a| a == "--quick");
            Ok(Command::Experiment { name, quick })
        }
        // Shorthand for the squash-storm scenario study.
        "squash" => {
            let quick = it.any(|a| a == "--quick");
            Ok(Command::Experiment {
                name: "squash".into(),
                quick,
            })
        }
        "verify" => match it.next() {
            Some("fuzz") => {
                let mut config = spb_verify::FuzzConfig::default();
                let mut count = 1u64;
                while let Some(a) = it.next() {
                    let parse_num = |flag: &str, v: &str| -> Result<u64, CliError> {
                        v.parse()
                            .map_err(|_| CliError(format!("{flag} expects a number, got {v:?}")))
                    };
                    match a {
                        "--seed" => {
                            config.seed = parse_num("--seed", take_value("--seed", &mut it)?)?
                        }
                        "--steps" => {
                            config.steps =
                                parse_num("--steps", take_value("--steps", &mut it)?)? as u32;
                        }
                        "--cores" => {
                            let v = take_value("--cores", &mut it)?;
                            config.cores = v
                                .parse::<usize>()
                                .ok()
                                .filter(|&c| (1..=8).contains(&c))
                                .ok_or_else(|| {
                                    CliError(format!("--cores expects 1..=8, got {v:?}"))
                                })?;
                        }
                        "--fault-rate-e4" => {
                            config.fault_rate_e4 = parse_num(
                                "--fault-rate-e4",
                                take_value("--fault-rate-e4", &mut it)?,
                            )? as u32;
                        }
                        "--mutate-at" => {
                            config.mutate_at = Some(parse_num(
                                "--mutate-at",
                                take_value("--mutate-at", &mut it)?,
                            )? as u32);
                        }
                        "--squash" => config.squash = true,
                        "--spec-mutate-at" => {
                            config.spec_mutate_at = Some(parse_num(
                                "--spec-mutate-at",
                                take_value("--spec-mutate-at", &mut it)?,
                            )? as u32);
                        }
                        "--count" => count = parse_num("--count", take_value("--count", &mut it)?)?,
                        other => return Err(CliError(format!("unknown argument {other:?}"))),
                    }
                }
                Ok(Command::Verify(VerifyCmd::Fuzz { config, count }))
            }
            Some("oracle") => {
                let mut opts = RunOpts::default();
                let mut app = None;
                let rest = parse_run_opts(&mut it, &mut opts)?;
                let mut rest_it = rest.iter();
                while let Some(a) = rest_it.next() {
                    match a.as_str() {
                        "--app" => app = rest_it.next().cloned(),
                        other => return Err(CliError(format!("unknown argument {other:?}"))),
                    }
                }
                Ok(Command::Verify(VerifyCmd::Oracle {
                    app: app.ok_or_else(|| CliError("verify oracle requires --app NAME".into()))?,
                    cfg: opts,
                }))
            }
            other => Err(CliError(format!(
                "verify requires a subcommand: fuzz | oracle (got {other:?})"
            ))),
        },
        "serve" => {
            let mut addr = "127.0.0.1:7433".to_string();
            let mut dir = "serve-state".to_string();
            let mut jobs = None;
            let mut queue = 4usize;
            let mut retry = 3u32;
            let mut deadline_ms = None;
            while let Some(a) = it.next() {
                let parse_num = |flag: &str, v: &str| -> Result<u64, CliError> {
                    v.parse()
                        .map_err(|_| CliError(format!("{flag} expects a number, got {v:?}")))
                };
                match a {
                    "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
                    "--dir" => dir = take_value("--dir", &mut it)?.to_string(),
                    "--jobs" => {
                        jobs = Some(parse_num("--jobs", take_value("--jobs", &mut it)?)? as usize);
                    }
                    "--queue" => {
                        queue = parse_num("--queue", take_value("--queue", &mut it)?)? as usize;
                    }
                    "--retry" => {
                        retry = parse_num("--retry", take_value("--retry", &mut it)?)?.max(1) as u32;
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(parse_num(
                            "--deadline-ms",
                            take_value("--deadline-ms", &mut it)?,
                        )?);
                    }
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Serve {
                addr,
                dir,
                jobs,
                queue,
                retry,
                deadline_ms,
            })
        }
        "client" => {
            let sub = it
                .next()
                .ok_or_else(|| CliError("client requires a subcommand: sweep | health | shutdown".into()))?;
            let mut addr = "127.0.0.1:7433".to_string();
            match sub {
                "health" | "shutdown" => {
                    while let Some(a) = it.next() {
                        match a {
                            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
                            other => return Err(CliError(format!("unknown argument {other:?}"))),
                        }
                    }
                    let action = if sub == "health" {
                        ClientAction::Health
                    } else {
                        ClientAction::Shutdown
                    };
                    Ok(Command::Client { addr, action })
                }
                "sweep" => {
                    let mut name = None;
                    let mut budget = spb_serve::Budget::Quick;
                    let mut apps: Vec<String> = Vec::new();
                    let mut policies: Vec<String> = Vec::new();
                    let mut sbs: Vec<usize> = Vec::new();
                    let mut retry = 1u32;
                    let mut out = None;
                    while let Some(a) = it.next() {
                        let parse_num = |flag: &str, v: &str| -> Result<u64, CliError> {
                            v.parse()
                                .map_err(|_| CliError(format!("{flag} expects a number, got {v:?}")))
                        };
                        match a {
                            "--addr" => addr = take_value("--addr", &mut it)?.to_string(),
                            "--name" => name = Some(take_value("--name", &mut it)?.to_string()),
                            "--out" => out = Some(take_value("--out", &mut it)?.to_string()),
                            "--budget" => {
                                budget = spb_serve::Budget::parse(take_value("--budget", &mut it)?)
                                    .map_err(CliError)?;
                            }
                            "--app" => {
                                apps = take_value("--app", &mut it)?
                                    .split(',')
                                    .map(str::to_string)
                                    .collect();
                            }
                            "--policy" => {
                                let v = take_value("--policy", &mut it)?;
                                // Validate spellings up front so typos fail
                                // client-side, not in the server's reply.
                                for p in v.split(',') {
                                    parse_policy(p)?;
                                }
                                policies = v.split(',').map(str::to_string).collect();
                            }
                            "--sb" => {
                                let v = take_value("--sb", &mut it)?;
                                sbs = v
                                    .split(',')
                                    .map(|x| {
                                        x.parse()
                                            .map_err(|_| CliError(format!("bad SB size {x:?}")))
                                    })
                                    .collect::<Result<_, _>>()?;
                            }
                            "--retry" => {
                                retry =
                                    parse_num("--retry", take_value("--retry", &mut it)?)?.max(1)
                                        as u32;
                            }
                            other => return Err(CliError(format!("unknown argument {other:?}"))),
                        }
                    }
                    // With no cell flags the client submits the full
                    // golden quick grid; any of --app/--policy/--sb
                    // narrows the cross product.
                    let mut job = if apps.is_empty() && policies.is_empty() && sbs.is_empty() {
                        spb_serve::JobSpec::quick_grid()
                    } else {
                        if apps.is_empty() {
                            return Err(CliError("client sweep needs --app NAMES with --policy/--sb".into()));
                        }
                        if policies.is_empty() {
                            policies = vec!["at-commit".into(), "spb".into()];
                        }
                        if sbs.is_empty() {
                            sbs = vec![14, 28, 56];
                        }
                        let mut cells = Vec::new();
                        for &sb in &sbs {
                            for p in &policies {
                                for a in &apps {
                                    cells.push(spb_serve::CellSpec {
                                        app: a.clone(),
                                        policy: p.clone(),
                                        sb,
                                    });
                                }
                            }
                        }
                        spb_serve::JobSpec::new("cli-sweep", budget, cells)
                    };
                    job.budget = budget;
                    job.retry = retry;
                    if let Some(n) = name {
                        job.name = n;
                    }
                    Ok(Command::Client {
                        addr,
                        action: ClientAction::Sweep { job, out },
                    })
                }
                other => Err(CliError(format!(
                    "client requires a subcommand: sweep | health | shutdown (got {other:?})"
                ))),
            }
        }
        "tune" => {
            let mut o = TuneCmd::default();
            while let Some(a) = it.next() {
                let parse_num = |flag: &str, v: &str| -> Result<u64, CliError> {
                    v.parse()
                        .map_err(|_| CliError(format!("{flag} expects a number, got {v:?}")))
                };
                match a {
                    "--strategy" => {
                        o.strategy = spb_tune::Strategy::parse(take_value("--strategy", &mut it)?)
                            .map_err(CliError)?;
                    }
                    "--seed" => o.seed = parse_num("--seed", take_value("--seed", &mut it)?)?,
                    "--points" => {
                        o.points =
                            parse_num("--points", take_value("--points", &mut it)?)? as usize;
                    }
                    "--apps" => o.apps = take_value("--apps", &mut it)?.to_string(),
                    "--sb" => {
                        let v = take_value("--sb", &mut it)?;
                        o.sbs = Some(
                            v.split(',')
                                .map(|x| {
                                    x.parse()
                                        .map_err(|_| CliError(format!("bad SB size {x:?}")))
                                })
                                .collect::<Result<_, _>>()?,
                        );
                    }
                    "--budget" => {
                        let v = take_value("--budget", &mut it)?;
                        if v != "quick" && v != "paper" {
                            return Err(CliError(format!(
                                "--budget expects quick or paper, got {v:?}"
                            )));
                        }
                        o.budget = v.to_string();
                    }
                    "--warmup" => {
                        o.warmup = Some(parse_num("--warmup", take_value("--warmup", &mut it)?)?);
                    }
                    "--uops" => {
                        o.uops = Some(parse_num("--uops", take_value("--uops", &mut it)?)?);
                    }
                    "--cache" => o.cache = take_value("--cache", &mut it)?.to_string(),
                    "--out" => o.out = take_value("--out", &mut it)?.to_string(),
                    "--name" => o.name = Some(take_value("--name", &mut it)?.to_string()),
                    "--jobs" => {
                        o.jobs =
                            Some(parse_num("--jobs", take_value("--jobs", &mut it)?)? as usize);
                    }
                    "--retry" => {
                        o.retry =
                            parse_num("--retry", take_value("--retry", &mut it)?)?.max(1) as u32;
                    }
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Tune(o))
        }
        "bench" => {
            let mut baseline = None;
            let mut kernel = KernelMode::Wheel;
            let mut samples = 3usize;
            while let Some(a) = it.next() {
                match a {
                    "--baseline" => {
                        baseline = Some(take_value("--baseline", &mut it)?.to_string());
                    }
                    "--kernel" => {
                        let v = take_value("--kernel", &mut it)?;
                        kernel =
                            KernelMode::parse(v).map_err(|e| CliError(format!("--kernel: {e}")))?;
                    }
                    "--samples" => {
                        let v = take_value("--samples", &mut it)?;
                        samples = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            CliError(format!("--samples expects a positive number, got {v:?}"))
                        })?;
                    }
                    other => return Err(CliError(format!("unknown argument {other:?}"))),
                }
            }
            Ok(Command::Bench {
                baseline: baseline
                    .ok_or_else(|| CliError("bench requires --baseline SNAPSHOT.json".into()))?,
                kernel,
                samples,
            })
        }
        other => Err(CliError(format!(
            "unknown command {other:?}; try `spbsim help`"
        ))),
    }
}

/// Looks up an application in both suites with a helpful error.
pub fn find_app(name: &str) -> Result<AppProfile, CliError> {
    AppProfile::by_name(name).map_err(|e| CliError(e.to_string()))
}

/// Usage text.
pub const USAGE: &str = "\
spbsim — the Store-Prefetch Burst simulator

USAGE:
  spbsim apps                                   list application profiles
  spbsim run --app NAME [opts] [--chart]        run one application, print a report
  spbsim suite [--suite spec|parsec] [opts]     run a whole suite
  spbsim record --app NAME --ops N --out FILE   record a trace file
  spbsim trace-info FILE                        inspect a trace file
  spbsim replay --trace FILE [opts]             replay a recorded trace
  spbsim sweep --app NAME [--sb 14,20,28,56] [--policy at-commit,spb] [--chart] [--resume]
               [--retry N]
  spbsim trace --app NAME [--out trace.json] [opts]   export a Chrome trace of a run
  spbsim experiment NAME [--quick]              regenerate a paper experiment
  spbsim squash [--quick]                       squash-storm scenario study: wasted
                                                RFOs / leaked M state, SPB vs at-commit
  spbsim verify fuzz [--seed N] [--steps M] [--cores 1..8] [--count K]
                     [--fault-rate-e4 R] [--mutate-at S] [--squash] [--spec-mutate-at S]
                                                run/replay coherence-fuzzer schedules
  spbsim verify oracle --app NAME [opts]        diff one run against the oracles
  spbsim serve [--addr H:P] [--dir DIR] [--jobs N] [--queue N] [--retry N]
               [--deadline-ms MS]               run the fault-tolerant sweep service
  spbsim client sweep [--addr H:P] [--app LIST --policy LIST --sb LIST]
               [--budget quick|paper] [--retry N] [--name NAME] [--out FILE]
                                                submit a sweep job (default: the
                                                full 230-cell quick grid)
  spbsim client health [--addr H:P]             print the service health snapshot
  spbsim client shutdown [--addr H:P]           stop the service gracefully
  spbsim bench --baseline SNAPSHOT.json [--kernel wheel|event|tick] [--samples N]
                                                re-time the quick benchmark grid and
                                                print the geomean speedup over the
                                                committed snapshot
  spbsim tune [--strategy grid|random|halving] [--seed N] [--points N]
              [--apps sb-bound|spec|LIST] [--sb LIST] [--budget quick|paper]
              [--warmup N] [--uops N] [--cache DIR] [--out DIR] [--name NAME]
              [--jobs N] [--retry N]
                                                explore the policy design space and
                                                report the Pareto frontier (cycles ×
                                                energy × coherence traffic)

RUN OPTIONS:
  --policy P      (default at-commit) one of:
                    none | at-execute | at-commit | ideal
                    spb[:KEYS]          parameterized SPB — KEYS is a comma list of
                                        n=1..1024, dedupe=on|off, burst=auto|1..15,
                                        frac=(0,1] (≤3 decimals), backward=on|off,
                                        cross=0..8   e.g. spb:n=32,dedupe=off,burst=3
                    spb-dynamic[:n=N]   per-core adaptive window
                    spb-feedback[:n=N]  accuracy-feedback burst throttling
                  the classic spellings parse (and print) exactly as before;
                  every label round-trips: parse(label(p)) == p
  --sb N          store-buffer entries            (default 56)
  --uops N        measured µops                   (default 600000)
  --warmup N      warm-up µops                    (default 150000)
  --seed N        workload seed                   (default 42)
  --jobs N        sweep worker threads            (default $SPB_JOBS or all cores)
  --fault-rate R  uniform memory fault-injection rate in [0,1] (default 0 = off)
  --fault-seed N  fault-injection seed            (default 1)
  --kernel K      execution kernel: wheel (push-based timing wheel,
                  default), event (probe-polling skip-ahead) or tick
                  (legacy lock-step reference; bit-identical results)
  --squash SPEC   wrong-path squash model — SPEC is a comma list of
                  rate=[0,1], depth=MIN..MAX, storm=N, ret2spec=on|off,
                  seed=N (rate=0 disables; parse(label(s)) == s)
                  e.g. --squash rate=0.05,depth=8..32,storm=4

Suite and sweep runs fan out over a worker pool (results are identical
to a serial run) and write a machine-readable JSON report under
results/ (schema: {name, records: [{app, policy, sb, cycles, uops,
ipc, wall_ms}]}; a \"failed\" array is appended when cells crashed).
A cell that panics or trips the coherence checker fails alone: the
other cells complete, the partial report is saved, and `sweep
--resume` re-runs only the missing or failed cells. With `--retry N`
transiently failing cells (panics, deadline overruns) are retried up
to N total attempts with deterministic seeded backoff; the attempt
count is recorded in each failure record. Invariant violations never
retry — they fail fast so a real coherence bug is never papered over.

`serve` runs the same sweeps as a supervised TCP service (DESIGN.md
§10): every cell result lands in a checksummed content-addressed
cache, accepted jobs are journaled write-ahead so a `kill -9`
mid-sweep is recovered on restart with only missing cells re-run, and
a full queue sheds new submissions with an explicit `overloaded`
rejection instead of hanging.

`tune` explores the parameterized policy space (window × dedupe ×
burst threshold × page fraction × adaptive variants × SB sizes; 612
points by default) with a grid, seeded-random, or successive-halving
strategy, scores every point on cycles + energy + coherence traffic
over the app set, and writes a checksummed Pareto-frontier report
(DESIGN.md §11). Cells go through the same content-addressed cache as
the sweep service, so re-running a tune — or overlapping tunes — is a
cache hit and the report is byte-identical for a fixed seed.

`trace` re-runs the application with the observability layer attached
(identical simulated numbers; see DESIGN.md §7) and writes a Chrome
trace_event JSON — open it at chrome://tracing or https://ui.perfetto.dev —
with SB-stall episodes, SPB burst detections and issues, coherence
messages, MSHR allocations and occupancy counters. It defaults to a
reduced µop budget (40k warm-up / 100k measured) so the file stays
small while still covering the store-burst phases.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kernel_flag_and_rejects_bad_values() {
        let cmd = parse(["run", "--app", "x264", "--kernel", "tick"]).unwrap();
        match cmd {
            Command::Run { cfg, .. } => {
                assert_eq!(cfg.kernel, KernelMode::Tick);
                assert_eq!(cfg.to_sim_config().kernel, KernelMode::Tick);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(RunOpts::default().kernel, KernelMode::Wheel);
        match parse(["run", "--app", "x264", "--kernel", "wheel"]).unwrap() {
            Command::Run { cfg, .. } => assert_eq!(cfg.kernel, KernelMode::Wheel),
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(["run", "--app", "x264", "--kernel", "warp"]).unwrap_err();
        assert!(err.to_string().contains("--kernel"), "{err}");
        // The sweep arm duplicates flag parsing; cover it separately.
        match parse(["sweep", "--app", "x264", "--kernel", "tick"]).unwrap() {
            Command::Sweep { cfg, .. } => assert_eq!(cfg.kernel, KernelMode::Tick),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_bench_against_a_baseline() {
        let cmd = parse(["bench", "--baseline", "BENCH_PR9.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                baseline: "BENCH_PR9.json".into(),
                kernel: KernelMode::Wheel,
                samples: 3,
            }
        );
        match parse(["bench", "--baseline", "b.json", "--kernel", "event", "--samples", "5"])
            .unwrap()
        {
            Command::Bench {
                kernel, samples, ..
            } => {
                assert_eq!(kernel, KernelMode::Event);
                assert_eq!(samples, 5);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(["bench"]).is_err(), "--baseline is required");
        assert!(parse(["bench", "--baseline", "b.json", "--samples", "0"]).is_err());
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse([
            "run", "--app", "x264", "--policy", "spb", "--sb", "14", "--chart",
        ])
        .unwrap();
        match cmd {
            Command::Run { app, cfg, chart } => {
                assert_eq!(app, "x264");
                assert_eq!(cfg.policy, PolicyKind::spb_default());
                assert_eq!(cfg.sb, 14);
                assert!(chart);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_suite_defaults() {
        let cmd = parse(["suite"]).unwrap();
        assert_eq!(
            cmd,
            Command::Suite {
                suite: "spec".into(),
                cfg: RunOpts::default()
            }
        );
    }

    #[test]
    fn parses_record_and_replay() {
        let cmd = parse([
            "record",
            "--app",
            "gcc",
            "--ops",
            "5000",
            "--out",
            "/tmp/t.spbt",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Record {
                app: "gcc".into(),
                ops: 5000,
                out: "/tmp/t.spbt".into(),
                seed: 42
            }
        );
        let cmd = parse(["replay", "--trace", "/tmp/t.spbt", "--sb", "20"]).unwrap();
        match cmd {
            Command::Replay { trace, cfg } => {
                assert_eq!(trace, "/tmp/t.spbt");
                assert_eq!(cfg.sb, 20);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_policy_and_command() {
        assert!(parse(["run", "--app", "x", "--policy", "magic"]).is_err());
        assert!(parse(["frobnicate"]).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse([]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_sweep_lists() {
        let cmd = parse([
            "sweep",
            "--app",
            "x264",
            "--sb",
            "8,16",
            "--policy",
            "spb,ideal",
        ])
        .unwrap();
        match cmd {
            Command::Sweep {
                app, sbs, policies, ..
            } => {
                assert_eq!(app, "x264");
                assert_eq!(sbs, vec![8, 16]);
                assert_eq!(
                    policies,
                    vec![PolicyKind::spb_default(), PolicyKind::IdealSb]
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn experiment_parses_quick_flag() {
        assert_eq!(
            parse(["experiment", "fig05", "--quick"]).unwrap(),
            Command::Experiment {
                name: "fig05".into(),
                quick: true
            }
        );
    }

    #[test]
    fn parses_fault_flags_and_resume() {
        let cmd = parse([
            "run",
            "--app",
            "gcc",
            "--fault-rate",
            "0.02",
            "--fault-seed",
            "9",
        ])
        .unwrap();
        match cmd {
            Command::Run { cfg, .. } => {
                assert_eq!(cfg.fault_rate, 0.02);
                assert_eq!(cfg.fault_seed, 9);
                assert!(cfg.to_sim_config().mem.fault.enabled());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(!RunOpts::default().to_sim_config().mem.fault.enabled());
        assert!(parse(["run", "--app", "gcc", "--fault-rate", "1.5"]).is_err());
        let cmd = parse(["sweep", "--app", "x264", "--resume", "--fault-rate", "0.01"]).unwrap();
        match cmd {
            Command::Sweep { resume, cfg, .. } => {
                assert!(resume);
                assert_eq!(cfg.fault_rate, 0.01);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_trace_with_small_default_budget() {
        let cmd = parse(["trace", "--app", "x264", "--policy", "spb"]).unwrap();
        match cmd {
            Command::Trace { app, cfg, out } => {
                assert_eq!(app, "x264");
                assert_eq!(cfg.policy, PolicyKind::spb_default());
                assert_eq!(out, "trace.json");
                assert_eq!(cfg.warmup, 40_000);
                assert_eq!(cfg.uops, 100_000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(["trace", "--app", "gcc", "--out", "g.json", "--uops", "5000"]).unwrap();
        match cmd {
            Command::Trace { cfg, out, .. } => {
                assert_eq!(out, "g.json");
                assert_eq!(cfg.uops, 5000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn find_app_error_lists_candidates() {
        let err = find_app("nonexistent").unwrap_err();
        assert!(err.to_string().contains("bwaves"));
    }

    #[test]
    fn bad_numbers_are_reported() {
        assert!(parse(["run", "--app", "x", "--sb", "lots"]).is_err());
        assert!(parse(["record", "--app", "x", "--ops", "many", "--out", "f"]).is_err());
    }

    #[test]
    fn malformed_fault_rate_and_jobs_fail_without_panicking() {
        // Each of these must come back as Err (→ exit 2 in main), and
        // the message must name the offending flag.
        for bad in [
            vec!["run", "--app", "gcc", "--fault-rate", "abc"],
            vec!["run", "--app", "gcc", "--fault-rate", "-0.5"],
            vec!["run", "--app", "gcc", "--fault-rate", "2.0"],
            vec!["run", "--app", "gcc", "--jobs", "many"],
            vec!["run", "--app", "gcc", "--jobs", "-3"],
            vec!["sweep", "--app", "x264", "--fault-rate", "nope"],
            vec!["sweep", "--app", "x264", "--jobs", "0.5"],
        ] {
            let flag = bad[3];
            let err = parse(bad.clone()).expect_err(&format!("{bad:?} must fail"));
            assert!(
                err.to_string().contains(flag.trim_start_matches('-')),
                "error {err} does not name {flag}"
            );
        }
    }

    #[test]
    fn parses_sweep_retry() {
        match parse(["sweep", "--app", "x264", "--retry", "4"]).unwrap() {
            Command::Sweep { retry, .. } => assert_eq!(retry, 4),
            other => panic!("wrong parse: {other:?}"),
        }
        // Default stays at one attempt; zero and garbage are rejected.
        match parse(["sweep", "--app", "x264"]).unwrap() {
            Command::Sweep { retry, .. } => assert_eq!(retry, 1),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(["sweep", "--app", "x264", "--retry", "0"]).is_err());
        assert!(parse(["sweep", "--app", "x264", "--retry", "lots"]).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        match parse([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--dir",
            "/tmp/state",
            "--jobs",
            "2",
            "--queue",
            "1",
            "--retry",
            "5",
            "--deadline-ms",
            "1000",
        ])
        .unwrap()
        {
            Command::Serve {
                addr,
                dir,
                jobs,
                queue,
                retry,
                deadline_ms,
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(dir, "/tmp/state");
                assert_eq!(jobs, Some(2));
                assert_eq!(queue, 1);
                assert_eq!(retry, 5);
                assert_eq!(deadline_ms, Some(1000));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(["serve", "--queue", "many"]).is_err());
        assert!(parse(["serve", "--frobnicate"]).is_err());
    }

    #[test]
    fn parses_client_subcommands() {
        match parse(["client", "health", "--addr", "example:9"]).unwrap() {
            Command::Client { addr, action } => {
                assert_eq!(addr, "example:9");
                assert_eq!(action, ClientAction::Health);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(["client", "shutdown"]).unwrap() {
            Command::Client { action, .. } => assert_eq!(action, ClientAction::Shutdown),
            other => panic!("wrong parse: {other:?}"),
        }
        // A bare `client sweep` submits the full golden quick grid.
        match parse(["client", "sweep"]).unwrap() {
            Command::Client {
                action: ClientAction::Sweep { job, out },
                ..
            } => {
                assert_eq!(job.cells.len(), 230);
                assert_eq!(job.name, "sweep-grid-quick");
                assert_eq!(out, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Cell flags narrow to a cross product, validated client-side.
        match parse([
            "client", "sweep", "--app", "x264,gcc", "--policy", "spb", "--sb", "14,56",
            "--retry", "3", "--name", "mini", "--out", "r.json",
        ])
        .unwrap()
        {
            Command::Client {
                action: ClientAction::Sweep { job, out },
                ..
            } => {
                assert_eq!(job.cells.len(), 4);
                assert_eq!(job.retry, 3);
                assert_eq!(job.name, "mini");
                assert_eq!(out.as_deref(), Some("r.json"));
                assert_eq!(job.cells[0].app, "x264");
                assert_eq!(job.cells[0].policy, "spb");
                assert_eq!(job.cells[0].sb, 14);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(["client", "sweep", "--app", "x264", "--policy", "magic"]).is_err());
        assert!(parse(["client", "sweep", "--policy", "spb"]).is_err());
        assert!(parse(["client", "warp"]).is_err());
        assert!(parse(["client"]).is_err());
    }

    #[test]
    fn parses_tune_flags_and_defaults() {
        match parse(["tune"]).unwrap() {
            Command::Tune(o) => {
                assert_eq!(o, TuneCmd::default());
                assert_eq!(o.strategy, spb_tune::Strategy::Grid);
                assert_eq!(o.points, 60);
                assert_eq!(o.apps, "bwaves,x264,roms");
                assert_eq!(o.cache, "tune-state/cache");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse([
            "tune", "--strategy", "halving", "--seed", "7", "--points", "200", "--apps",
            "sb-bound", "--sb", "14,56", "--budget", "paper", "--warmup", "5000", "--uops",
            "20000", "--cache", "/tmp/c", "--out", "/tmp/r", "--name", "t", "--jobs", "2",
            "--retry", "4",
        ])
        .unwrap()
        {
            Command::Tune(o) => {
                assert_eq!(o.strategy, spb_tune::Strategy::Halving);
                assert_eq!(o.seed, 7);
                assert_eq!(o.points, 200);
                assert_eq!(o.apps, "sb-bound");
                assert_eq!(o.sbs, Some(vec![14, 56]));
                assert_eq!(o.budget, "paper");
                assert_eq!(o.warmup, Some(5000));
                assert_eq!(o.uops, Some(20000));
                assert_eq!(o.cache, "/tmp/c");
                assert_eq!(o.out, "/tmp/r");
                assert_eq!(o.name.as_deref(), Some("t"));
                assert_eq!(o.jobs, Some(2));
                assert_eq!(o.retry, 4);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn tune_rejects_bad_flags() {
        assert!(parse(["tune", "--strategy", "genetic"]).is_err());
        assert!(parse(["tune", "--budget", "huge"]).is_err());
        assert!(parse(["tune", "--points", "many"]).is_err());
        assert!(parse(["tune", "--sb", "14,big"]).is_err());
        assert!(parse(["tune", "--frobnicate"]).is_err());
    }

    #[test]
    fn parses_parameterized_policies_end_to_end() {
        // The new grammar flows through the ordinary --policy flag.
        match parse(["run", "--app", "x264", "--policy", "spb:n=32,dedupe=off,burst=3"]).unwrap() {
            Command::Run { cfg, .. } => {
                assert_eq!(cfg.policy.label(), "spb:n=32,dedupe=off,burst=3");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Errors teach the grammar: every valid key and range is named.
        let err = parse(["run", "--app", "x264", "--policy", "spb:warp=9"]).unwrap_err();
        for key in ["n=1..1024", "dedupe=on|off", "burst=auto|1..15", "frac=", "cross=0..8"] {
            assert!(err.to_string().contains(key), "{err}");
        }
    }

    #[test]
    fn parses_verify_fuzz_roundtrip() {
        let cmd = parse([
            "verify",
            "fuzz",
            "--seed",
            "7",
            "--steps",
            "512",
            "--cores",
            "2",
            "--fault-rate-e4",
            "250",
            "--mutate-at",
            "100",
            "--count",
            "4",
        ])
        .unwrap();
        match cmd {
            Command::Verify(VerifyCmd::Fuzz { config, count }) => {
                assert_eq!(config.seed, 7);
                assert_eq!(config.steps, 512);
                assert_eq!(config.cores, 2);
                assert_eq!(config.fault_rate_e4, 250);
                assert_eq!(config.mutate_at, Some(100));
                assert_eq!(count, 4);
                // The failure-replay string round-trips through the parser.
                let replay = config.repro();
                let args: Vec<&str> = replay.split_whitespace().skip(1).collect();
                match parse(args).unwrap() {
                    Command::Verify(VerifyCmd::Fuzz { config: c2, .. }) => {
                        assert_eq!(c2, config)
                    }
                    other => panic!("replay parsed as {other:?}"),
                }
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_squash_flags_roundtrip() {
        // --squash on run-like commands lands in the SimConfig…
        let cmd = parse([
            "run",
            "--app",
            "x264",
            "--squash",
            "rate=0.05,depth=8..32,storm=4,seed=7",
        ])
        .unwrap();
        match cmd {
            Command::Run { cfg, .. } => {
                assert!(cfg.squash.enabled());
                // …and round-trips label() -> parse() like every other
                // spelling on the wire (the PR 8 pattern).
                assert_eq!(
                    SquashConfig::parse(&cfg.squash.label()).unwrap(),
                    cfg.squash
                );
                assert_eq!(cfg.to_sim_config().squash, cfg.squash);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // The default stays off and keeps the config's Debug (and so
        // the serve cache key) byte-identical to a squash-less build.
        let cmd = parse(["run", "--app", "x264"]).unwrap();
        match cmd {
            Command::Run { cfg, .. } => assert!(!cfg.squash.enabled()),
            other => panic!("wrong parse: {other:?}"),
        }
        // A bad spec names the flag.
        let err = parse(["run", "--app", "x264", "--squash", "rate=2"]).unwrap_err();
        assert!(err.to_string().contains("--squash"), "{err}");
        // `spbsim squash` is shorthand for the registry experiment.
        assert_eq!(
            parse(["squash", "--quick"]).unwrap(),
            Command::Experiment {
                name: "squash".into(),
                quick: true
            }
        );
    }

    #[test]
    fn parses_verify_fuzz_squash_flags() {
        let cmd = parse([
            "verify",
            "fuzz",
            "--seed",
            "11",
            "--squash",
            "--spec-mutate-at",
            "64",
        ])
        .unwrap();
        match cmd {
            Command::Verify(VerifyCmd::Fuzz { config, .. }) => {
                assert!(config.squash);
                assert_eq!(config.spec_mutate_at, Some(64));
                // The replay string re-parses to the same schedule.
                let replay = config.repro();
                let args: Vec<&str> = replay.split_whitespace().skip(1).collect();
                match parse(args).unwrap() {
                    Command::Verify(VerifyCmd::Fuzz { config: c2, .. }) => {
                        assert_eq!(c2, config)
                    }
                    other => panic!("replay parsed as {other:?}"),
                }
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn verify_error_paths_fail_cleanly() {
        assert!(parse(["verify"]).is_err());
        assert!(parse(["verify", "shake"]).is_err());
        assert!(parse(["verify", "fuzz", "--cores", "0"]).is_err());
        assert!(parse(["verify", "fuzz", "--cores", "9"]).is_err());
        assert!(parse(["verify", "fuzz", "--steps", "lots"]).is_err());
        assert!(parse(["verify", "oracle"]).is_err());
        let cmd = parse(["verify", "oracle", "--app", "x264", "--sb", "14"]).unwrap();
        match cmd {
            Command::Verify(VerifyCmd::Oracle { app, cfg }) => {
                assert_eq!(app, "x264");
                assert_eq!(cfg.sb, 14);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }
}

//! CI smoke gate for the fault-tolerant sweep service.
//!
//! The scenario the service exists for, end to end, against real
//! processes and a real `SIGKILL`:
//!
//! 1. start `spbsim serve` (serial workers, so the kill window is
//!    wide), submit the full 230-cell quick grid from two overlapping
//!    clients;
//! 2. `kill -9` the server mid-sweep, after some cells have been
//!    computed and cached but long before the grid is done;
//! 3. restart the server on the same state directory and verify the
//!    journaled jobs are recovered and finish with only the missing
//!    cells re-simulated (cache-hit counters prove it);
//! 4. submit the grid once more and check the 230 records are
//!    bit-identical to the committed golden file
//!    `results/sweep-grid-quick.json` (everything except the
//!    host-timing `wall_ms`).
//!
//! Exits 0 and prints `serve_smoke: PASS` on success; prints the
//! failure and exits 1 otherwise.

use spb_serve::{client, JobSpec};
use spb_stats::json::Json;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Cells that must be on disk before the kill (one cache store each).
const KILL_AFTER: u64 = 20;
/// Kill before this many cells exist so a real recompute remains.
const KILL_BEFORE: u64 = 200;
const GRID_CELLS: u64 = 230;

fn main() {
    match run() {
        Ok(()) => println!("serve_smoke: PASS"),
        Err(e) => {
            eprintln!("serve_smoke: FAIL: {e}");
            std::process::exit(1);
        }
    }
}

/// A running `spbsim serve` child; killed on drop so no failure path
/// leaks a server process.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `spbsim serve` on an ephemeral port and parses the bound
/// address from its `serving on HOST:PORT` line.
fn spawn_server(dir: &std::path::Path, extra: &[&str]) -> Result<ServerProc, String> {
    let spbsim = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .map(|p| p.join("spbsim"))
        .ok_or("no parent dir for current_exe")?;
    let mut child = Command::new(&spbsim)
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--dir"])
        .arg(dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", spbsim.display()))?;
    let stdout = child.stdout.take().ok_or("no child stdout")?;
    let mut lines = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        let mut line = String::new();
        match lines.read_line(&mut line) {
            Ok(0) => return Err("server exited before binding".into()),
            Ok(_) => {
                print!("  server: {line}");
                if let Some(rest) = line.trim().strip_prefix("serving on ") {
                    break rest.to_string();
                }
            }
            Err(e) => return Err(format!("reading server stdout: {e}")),
        }
        if Instant::now() > deadline {
            return Err("server never printed its address".into());
        }
    };
    // Keep draining stdout so the server never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(lines.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(ServerProc { child, addr })
}

/// The `serve` counter table out of a health reply.
fn counters(addr: &str) -> Result<Json, String> {
    client::health(addr)?
        .get("metrics")
        .and_then(|m| m.get("serve"))
        .and_then(|c| c.get("counters"))
        .cloned()
        .ok_or_else(|| "health reply missing serve counters".into())
}

fn counter(table: &Json, name: &str) -> u64 {
    table.get(name).and_then(Json::as_u64).unwrap_or(0)
}

fn stat(reply: &Json, key: &str) -> u64 {
    reply
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX)
}

/// Every record's simulated fields, in order — everything except the
/// host-timing `wall_ms`.
fn grid_numbers(records: &[Json]) -> Vec<Vec<Json>> {
    records
        .iter()
        .map(|r| {
            ["app", "policy", "sb", "cycles", "uops", "ipc"]
                .iter()
                .map(|k| r.get(k).cloned().unwrap_or(Json::Null))
                .collect()
        })
        .collect()
}

fn run() -> Result<(), String> {
    let golden_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/sweep-grid-quick.json".into());
    let golden_text = std::fs::read_to_string(&golden_path)
        .map_err(|e| format!("golden grid {golden_path}: {e} (run from the repo root)"))?;
    let golden = Json::parse(&golden_text).map_err(|e| format!("golden grid: {e}"))?;
    let golden_records = golden
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("golden grid has no records")?
        .to_vec();
    if golden_records.len() != GRID_CELLS as usize {
        return Err(format!(
            "golden grid holds {} records, expected {GRID_CELLS}",
            golden_records.len()
        ));
    }

    let dir = std::env::temp_dir().join(format!("spb-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = scenario(&dir, &golden_records);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn scenario(dir: &PathBuf, golden_records: &[Json]) -> Result<(), String> {
    // Life 1: serial workers keep the sweep slow enough (a few
    // milliseconds per cell, ~230 cells) that the SIGKILL reliably
    // lands mid-run.
    println!("serve_smoke: life 1 — two overlapping quick-grid clients, then kill -9");
    let server = spawn_server(dir, &["--jobs", "1"])?;
    let job = JobSpec::quick_grid();
    let submitters: Vec<_> = (0..2)
        .map(|i| {
            let addr = server.addr.clone();
            let job = job.clone();
            std::thread::Builder::new()
                .name(format!("client-{i}"))
                .spawn(move || client::submit(&addr, &job))
                .expect("spawn client thread")
        })
        .collect();

    // Kill once enough cells are cached to prove partial recovery, but
    // well before the grid completes.
    let deadline = Instant::now() + Duration::from_secs(120);
    let computed_at_kill = loop {
        let table = counters(&server.addr)?;
        let computed = counter(&table, "cells_computed");
        if computed >= KILL_AFTER {
            if computed > KILL_BEFORE {
                return Err(format!(
                    "polling too slow: {computed} cells computed before the kill landed"
                ));
            }
            break computed;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "server never reached {KILL_AFTER} computed cells (at {computed})"
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    drop(server); // SIGKILL via the Drop guard — no graceful shutdown.
    println!("serve_smoke: killed the server at {computed_at_kill} computed cells");
    for t in submitters {
        // Both clients must observe an error, not a hang or a bogus Ok.
        match t.join().map_err(|_| "client thread panicked")? {
            Err(_) => {}
            Ok(r) => return Err(format!("client got a reply from a killed server: {r}")),
        }
    }

    // Life 2: restart on the same state. The journaled jobs must be
    // recovered and must finish, recomputing only the missing cells.
    println!("serve_smoke: life 2 — restart, recover, verify");
    let server = spawn_server(dir, &[])?;
    let table = counters(&server.addr)?;
    let recovered = counter(&table, "jobs_recovered");
    if recovered < 1 {
        return Err(format!("no journaled jobs recovered: {table}"));
    }
    let deadline = Instant::now() + Duration::from_secs(300);
    let table = loop {
        let table = counters(&server.addr)?;
        if counter(&table, "jobs_completed") >= recovered {
            break table;
        }
        if Instant::now() > deadline {
            return Err(format!("recovered jobs never completed: {table}"));
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    let recomputed = counter(&table, "cells_computed");
    if recomputed == 0 || recomputed >= GRID_CELLS {
        return Err(format!(
            "expected a partial recompute (0 < cells < {GRID_CELLS}), got {recomputed}: {table}"
        ));
    }
    println!(
        "serve_smoke: recovered {recovered} job(s), recomputed {recomputed} of {GRID_CELLS} cells"
    );

    // The final grid request is pure cache hits and bit-identical to
    // the committed golden file.
    let reply = client::submit(&server.addr, &job)?;
    if stat(&reply, "cache_hits") != GRID_CELLS || stat(&reply, "computed") != 0 {
        return Err(format!(
            "final grid was not served from cache: hits {} computed {}",
            stat(&reply, "cache_hits"),
            stat(&reply, "computed")
        ));
    }
    if stat(&reply, "failed") != 0 {
        return Err(format!("final grid lost cells: {} failed", stat(&reply, "failed")));
    }
    let records = reply
        .get("report")
        .and_then(|r| r.get("records"))
        .and_then(Json::as_arr)
        .ok_or("final reply missing report.records")?
        .to_vec();
    let (got, want) = (grid_numbers(&records), grid_numbers(golden_records));
    if got.len() != want.len() {
        return Err(format!("final grid holds {} records, golden {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        if g != w {
            return Err(format!("record {i} differs from golden: got {g:?}, want {w:?}"));
        }
    }
    println!("serve_smoke: all {GRID_CELLS} records bit-identical to the golden grid");

    client::shutdown(&server.addr)?;
    Ok(())
}

//! CI smoke check for the observability layer.
//!
//! Runs one SPEC and one PARSEC cell twice — once untraced, once with a
//! collector attached — and asserts the zero-cost contract: tracing
//! changes no simulated number. Then validates that the exported Chrome
//! trace is well-formed JSON and carries the headline event kinds
//! (SB-stall episodes, SPB bursts, coherence messages).

use spb_obs::{chrome_trace, Collector};
use spb_sim::config::{PolicyKind, SimConfig};
use spb_sim::Simulation;
use spb_stats::json::Json;
use spb_trace::profile::AppProfile;

fn check_cell(app_name: &str, cfg: &SimConfig) -> Vec<spb_obs::Event> {
    let app = AppProfile::by_name(app_name).expect("suite app");
    let plain = Simulation::with_config(&app, cfg).run_or_panic();
    let collector = Collector::new();
    let traced = Simulation::with_config(&app, cfg)
        .observe(collector.clone())
        .run_or_panic();
    assert_eq!(
        plain.cycles, traced.cycles,
        "{app_name}: tracing changed the cycle count"
    );
    assert_eq!(
        plain.uops, traced.uops,
        "{app_name}: tracing changed the µop count"
    );
    assert_eq!(
        plain.cpu, traced.cpu,
        "{app_name}: tracing changed the CPU counters"
    );
    let events = collector.take();
    assert!(!events.is_empty(), "{app_name}: collector saw no events");
    println!(
        "[trace_smoke] {app_name}: {} cycles traced == untraced, {} events",
        traced.cycles,
        events.len()
    );
    events
}

fn main() {
    let spec_cfg = SimConfig::quick()
        .with_sb(14)
        .with_policy(PolicyKind::spb_default());
    let events = check_cell("x264", &spec_cfg);

    // The exported trace must be valid JSON with the headline events.
    let trace = chrome_trace(&events);
    let text = format!("{trace:#}");
    let parsed = Json::parse(&text).expect("chrome trace is well-formed JSON");
    let names: Vec<String> = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(str::to_string))
        .collect();
    for needle in ["stall:store-buffer", "spb-burst", "coh:"] {
        assert!(
            names.iter().any(|n| n.contains(needle)),
            "trace is missing {needle:?} events"
        );
    }
    println!(
        "[trace_smoke] chrome trace OK: {} trace events",
        names.len()
    );

    // One multi-threaded PARSEC cell through the same contract.
    let mut parsec_cfg = spec_cfg.clone();
    parsec_cfg.warmup_uops /= 4;
    parsec_cfg.measure_uops /= 4;
    check_cell("dedup", &parsec_cfg);

    println!("[trace_smoke] PASS");
}

//! A minimal JSON value type with parser and pretty-printer.
//!
//! The workspace builds fully offline, so `serde`/`serde_json` are
//! unavailable; this module provides the small, dependency-free JSON
//! surface the machine-readable sweep reports need: build a [`Json`]
//! value, render it with `to_string()`/`{:#}`, and [`Json::parse`] it
//! back. Integers and floats are kept as distinct variants so `u64`
//! counters round-trip exactly.
//!
//! # Examples
//!
//! ```
//! use spb_stats::json::Json;
//!
//! let v = Json::obj([
//!     ("app", Json::str("x264")),
//!     ("cycles", Json::from(123456u64)),
//!     ("ipc", Json::from(1.62)),
//! ]);
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(v, back);
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(123456));
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        // Counters beyond i64::MAX do not occur in practice; saturate
        // rather than silently wrapping if one ever does.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if integral and non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `f64` (accepts both numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

impl Json {
    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, pretty: bool, depth: usize) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Always mark floats as floats so they re-parse as
                    // the same variant.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    if pretty {
                        f.write_str("\n")?;
                        write_indent(f, depth + 1)?;
                    }
                    item.fmt_at(f, pretty, depth + 1)?;
                }
                if pretty {
                    f.write_str("\n")?;
                    write_indent(f, depth)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    if pretty {
                        f.write_str("\n")?;
                        write_indent(f, depth + 1)?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(if pretty { ": " } else { ":" })?;
                    v.fmt_at(f, pretty, depth + 1)?;
                }
                if pretty {
                    f.write_str("\n")?;
                    write_indent(f, depth)?;
                }
                f.write_str("}")
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact with `{}`, two-space-indented with `{:#}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_at(f, f.alternate(), 0)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs don't appear in our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole UTF-8 character, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::str("sweep")),
            ("count", Json::from(3u64)),
            ("ratio", Json::from(0.5)),
            ("whole", Json::from(2.0)),
            ("flag", Json::from(true)),
            ("nothing", Json::Null),
            (
                "runs",
                Json::arr([
                    Json::obj([("app", Json::str("x264")), ("cycles", Json::from(99u64))]),
                    Json::obj([("app", Json::str("lbm")), ("cycles", Json::from(-1i64))]),
                ]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&format!("{v:#}")).unwrap(), v);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        let v = Json::parse("[1, 1.0, 2e3]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Json::Int(1));
        assert_eq!(items[1], Json::Float(1.0));
        assert_eq!(items[2], Json::Float(2000.0));
        // A whole float re-serializes with a decimal point.
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\té—ü");
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::str("Aé"));
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"a": {"b": [1, 2.5, "s"]}}"#).unwrap();
        let arr = v
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(arr[2].as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1 2]",
            "nulll",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let e = Json::parse("[1,]").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }
}

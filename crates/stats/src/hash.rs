//! Small deterministic hashing helpers.
//!
//! The workspace builds fully offline, so there is no `sha2`/`blake3`;
//! the robustness layers need only *deterministic, well-distributed,
//! reproducible* digests, not cryptographic ones:
//!
//! - [`fnv1a64`] fingerprints byte strings — sweep-report content
//!   checksums, content-addressed cache keys, journal line checksums.
//! - [`mix64`] (the splitmix64 finalizer) turns a composite seed into
//!   an independent-looking 64-bit value — seeded retry jitter, chaos
//!   injection draws.
//! - [`hex16`] renders a digest in the fixed-width form the on-disk
//!   formats embed.
//!
//! None of these are collision-resistant against an adversary; they
//! detect *accidental* corruption (truncated writes, flipped bytes) and
//! derive *reproducible* pseudo-random streams. That is exactly the
//! contract the sweep service needs.
//!
//! # Examples
//!
//! ```
//! use spb_stats::hash::{fnv1a64, hex16, mix64};
//!
//! let d = fnv1a64(b"x264|spb|14");
//! assert_eq!(d, fnv1a64(b"x264|spb|14"), "deterministic");
//! assert_eq!(hex16(d).len(), 16);
//! assert_ne!(mix64(1), mix64(2));
//! ```

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`.
///
/// Stable across platforms and releases: the constants are pinned, so
/// digests embedded in on-disk artifacts stay comparable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The splitmix64 finalizer: a bijective mixer that turns structured
/// input (`seed ^ index ^ attempt`, say) into a value with no visible
/// structure. Bijective ⇒ distinct inputs give distinct outputs.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders a 64-bit digest as 16 lowercase hex digits (zero-padded).
pub fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses the [`hex16`] form back. `None` on anything that is not
/// exactly 16 hex digits.
pub fn parse_hex16(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_distinguishes_small_perturbations() {
        let base = fnv1a64(b"{\"cycles\":123456}");
        assert_ne!(base, fnv1a64(b"{\"cycles\":123457}"));
        assert_ne!(base, fnv1a64(b"{\"cycles\":12345}"));
    }

    #[test]
    fn mix64_is_injective_on_a_sample_and_spreads_bits() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
        // Consecutive inputs should not produce consecutive outputs.
        assert!(mix64(1).abs_diff(mix64(2)) > 1 << 20);
    }

    #[test]
    fn hex16_round_trips() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            let s = hex16(v);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_hex16(&s), Some(v));
        }
        assert_eq!(parse_hex16("xyz"), None);
        assert_eq!(parse_hex16("00"), None);
        assert_eq!(parse_hex16("zzzzzzzzzzzzzzzz"), None);
    }
}

//! Statistics substrate for the SPB simulator.
//!
//! The simulator in this workspace is measured the way the paper measures
//! gem5: with event counters, stall-cycle attribution in the style of
//! Intel's Top-Down model, and normalized geometric-mean summaries.
//! This crate provides those building blocks:
//!
//! - [`Counter`]: a named event counter.
//! - [`Histogram`]: fixed-width bucketed histogram with percentile queries.
//! - [`topdown`]: issue-stall attribution ([`topdown::StallCause`],
//!   [`topdown::TopDown`]) and the "execution stalls with L1D miss
//!   pending" metric used by Figures 10, 14 and 15 of the paper.
//! - [`table`]: a small table type ([`table::Table`]) that renders the
//!   rows/series the paper reports as aligned text, Markdown or CSV.
//! - [`summary`]: normalization and geometric-mean helpers.
//! - [`json`]: a dependency-free JSON value type ([`json::Json`]) used
//!   for the machine-readable sweep reports.
//! - [`hash`]: deterministic digests and mixers ([`hash::fnv1a64`],
//!   [`hash::mix64`]) for content checksums, cache keys and seeded
//!   jitter.
//!
//! # Examples
//!
//! ```
//! use spb_stats::{Counter, summary::geomean};
//!
//! let mut hits = Counter::new("l1d_hits");
//! hits.add(3);
//! hits.inc();
//! assert_eq!(hits.value(), 4);
//! assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod counter;
pub mod hash;
pub mod histogram;
pub mod json;
pub mod summary;
pub mod table;
pub mod topdown;

pub use counter::Counter;
pub use histogram::Histogram;
pub use table::Table;
pub use topdown::{StallCause, TopDown};

//! Issue-stall attribution in the style of Intel's Top-Down model.
//!
//! The paper classifies pipeline issue stalls by the resource that caused
//! them — the store buffer ("SB-induced stalls", the subject of the whole
//! paper) versus everything else (ROB, issue queue, load queue, physical
//! registers, front end) — and additionally tracks *execution stalls
//! while an L1D miss is pending*, the metric behind Figures 14 and 15.
//! [`TopDown`] accumulates all of these per cycle.

use std::fmt;

/// The resource that blocked dispatch on a stalled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The store buffer / store queue was full — the paper's
    /// "SB-induced stall".
    StoreBuffer,
    /// The reorder buffer was full.
    Rob,
    /// The issue queue (reservation stations) was full.
    IssueQueue,
    /// The load queue was full.
    LoadQueue,
    /// No free physical register.
    Registers,
    /// The front end delivered no µops (fetch bubble / squash redirect).
    FrontEnd,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 6] = [
        StallCause::StoreBuffer,
        StallCause::Rob,
        StallCause::IssueQueue,
        StallCause::LoadQueue,
        StallCause::Registers,
        StallCause::FrontEnd,
    ];

    /// Whether this cause is lumped into "Other" (i.e. not the SB) in the
    /// paper's Figure 10 breakdown.
    pub fn is_other(self) -> bool {
        !matches!(self, StallCause::StoreBuffer)
    }

    fn index(self) -> usize {
        match self {
            StallCause::StoreBuffer => 0,
            StallCause::Rob => 1,
            StallCause::IssueQueue => 2,
            StallCause::LoadQueue => 3,
            StallCause::Registers => 4,
            StallCause::FrontEnd => 5,
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallCause::StoreBuffer => "store-buffer",
            StallCause::Rob => "rob",
            StallCause::IssueQueue => "issue-queue",
            StallCause::LoadQueue => "load-queue",
            StallCause::Registers => "registers",
            StallCause::FrontEnd => "front-end",
        };
        f.write_str(s)
    }
}

/// Per-core cycle accounting: total cycles, stall cycles by cause, and
/// execution stalls with an L1D miss pending.
///
/// # Examples
///
/// ```
/// use spb_stats::{StallCause, TopDown};
///
/// let mut td = TopDown::new();
/// td.tick(); // a productive cycle
/// td.tick();
/// td.record_stall(StallCause::StoreBuffer);
/// assert_eq!(td.cycles(), 2);
/// assert_eq!(td.stall_cycles(StallCause::StoreBuffer), 1);
/// assert!((td.sb_stall_ratio() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopDown {
    cycles: u64,
    stalls: [u64; 6],
    l1d_miss_pending_stalls: u64,
    committed_uops: u64,
}

impl TopDown {
    /// Creates an empty accounting record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by one cycle.
    #[inline]
    pub fn tick(&mut self) {
        self.cycles += 1;
    }

    /// Advances time by `n` cycles at once.
    ///
    /// Equivalent to calling [`TopDown::tick`] `n` times; used by the
    /// skip-ahead kernel to account for a whole quiescent span in one
    /// step.
    #[inline]
    pub fn tick_n(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Records that dispatch was blocked by `cause` this cycle.
    ///
    /// Call at most once per cycle with the *oldest* blocking resource,
    /// mirroring how performance counters attribute a stalled slot to a
    /// single cause.
    #[inline]
    pub fn record_stall(&mut self, cause: StallCause) {
        self.stalls[cause.index()] += 1;
    }

    /// Records `n` consecutive cycles blocked by the same `cause`.
    ///
    /// Equivalent to calling [`TopDown::record_stall`] once per cycle;
    /// valid only when the blocking resource provably cannot change
    /// over the span (the skip-ahead kernel's quiescent-span contract).
    #[inline]
    pub fn record_stall_n(&mut self, cause: StallCause, n: u64) {
        self.stalls[cause.index()] += n;
    }

    /// Records one cycle in which execution was stalled while at least
    /// one L1D miss was outstanding (Figures 14/15).
    #[inline]
    pub fn record_l1d_miss_pending_stall(&mut self) {
        self.l1d_miss_pending_stalls += 1;
    }

    /// Records `n` execution-stall cycles with an L1D miss pending.
    #[inline]
    pub fn record_l1d_miss_pending_stall_n(&mut self, n: u64) {
        self.l1d_miss_pending_stalls += n;
    }

    /// Records `n` committed µops (used for IPC).
    #[inline]
    pub fn record_commit(&mut self, n: u64) {
        self.committed_uops += n;
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Committed µops.
    pub fn committed_uops(&self) -> u64 {
        self.committed_uops
    }

    /// Instructions per cycle; 0.0 before any cycle elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Stall cycles attributed to `cause`.
    pub fn stall_cycles(&self, cause: StallCause) -> u64 {
        self.stalls[cause.index()]
    }

    /// Total stall cycles across all causes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Stall cycles from every cause other than the store buffer
    /// ("Other" in Figure 10).
    pub fn other_stall_cycles(&self) -> u64 {
        StallCause::ALL
            .iter()
            .filter(|c| c.is_other())
            .map(|&c| self.stall_cycles(c))
            .sum()
    }

    /// Fraction of all cycles stalled on a full store buffer — the
    /// quantity plotted in Figure 1.
    pub fn sb_stall_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles(StallCause::StoreBuffer) as f64 / self.cycles as f64
        }
    }

    /// Cycles stalled while an L1D miss was pending.
    pub fn l1d_miss_pending_stalls(&self) -> u64 {
        self.l1d_miss_pending_stalls
    }

    /// Merges another record into this one (used to aggregate cores).
    pub fn merge(&mut self, other: &TopDown) {
        self.cycles += other.cycles;
        for i in 0..self.stalls.len() {
            self.stalls[i] += other.stalls[i];
        }
        self.l1d_miss_pending_stalls += other.l1d_miss_pending_stalls;
        self.committed_uops += other.committed_uops;
    }

    /// Clears everything (end of warm-up).
    pub fn reset(&mut self) {
        *self = TopDown::default();
    }
}

impl fmt::Display for TopDown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} ipc={:.3} sb-stall={:.2}%",
            self.cycles,
            self.ipc(),
            self.sb_stall_ratio() * 100.0
        )?;
        for cause in StallCause::ALL {
            writeln!(f, "  {cause}: {}", self.stall_cycles(cause))?;
        }
        writeln!(f, "  l1d-miss-pending: {}", self.l1d_miss_pending_stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_is_all_zero() {
        let td = TopDown::new();
        assert_eq!(td.cycles(), 0);
        assert_eq!(td.total_stall_cycles(), 0);
        assert_eq!(td.ipc(), 0.0);
        assert_eq!(td.sb_stall_ratio(), 0.0);
    }

    #[test]
    fn stall_attribution_goes_to_single_cause() {
        let mut td = TopDown::new();
        td.tick();
        td.record_stall(StallCause::Rob);
        assert_eq!(td.stall_cycles(StallCause::Rob), 1);
        assert_eq!(td.stall_cycles(StallCause::StoreBuffer), 0);
        assert_eq!(td.other_stall_cycles(), 1);
    }

    #[test]
    fn sb_is_not_other() {
        assert!(!StallCause::StoreBuffer.is_other());
        assert!(StallCause::Rob.is_other());
        assert!(StallCause::FrontEnd.is_other());
    }

    #[test]
    fn ipc_counts_committed_uops_per_cycle() {
        let mut td = TopDown::new();
        for _ in 0..10 {
            td.tick();
            td.record_commit(2);
        }
        assert!((td.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TopDown::new();
        a.tick();
        a.record_stall(StallCause::StoreBuffer);
        a.record_l1d_miss_pending_stall();
        let mut b = TopDown::new();
        b.tick();
        b.tick();
        b.record_stall(StallCause::StoreBuffer);
        a.merge(&b);
        assert_eq!(a.cycles(), 3);
        assert_eq!(a.stall_cycles(StallCause::StoreBuffer), 2);
        assert_eq!(a.l1d_miss_pending_stalls(), 1);
    }

    #[test]
    fn bulk_accounting_matches_per_cycle_accounting() {
        let mut per_cycle = TopDown::new();
        for _ in 0..37 {
            per_cycle.tick();
            per_cycle.record_stall(StallCause::StoreBuffer);
            per_cycle.record_l1d_miss_pending_stall();
        }
        let mut bulk = TopDown::new();
        bulk.tick_n(37);
        bulk.record_stall_n(StallCause::StoreBuffer, 37);
        bulk.record_l1d_miss_pending_stall_n(37);
        assert_eq!(per_cycle, bulk);
    }

    #[test]
    fn all_causes_round_trip_through_index() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_mentions_every_cause() {
        let shown = format!("{}", TopDown::new());
        for cause in StallCause::ALL {
            assert!(shown.contains(&cause.to_string()));
        }
    }
}

//! Tabular result rendering.
//!
//! Every experiment binary in `spb-experiments` ends by printing a
//! [`Table`] whose rows/columns mirror the corresponding figure or table
//! in the paper, so a reader can diff shape against the publication.

use std::fmt;

/// A rectangular table of `f64` cells with named rows and columns.
///
/// # Examples
///
/// ```
/// use spb_stats::Table;
///
/// let mut t = Table::new("Fig. 5", &["at-commit", "SPB"]);
/// t.push_row("SB56", &[0.981, 1.005]);
/// t.push_row("SB14", &[0.859, 0.954]);
/// assert_eq!(t.get("SB56", "SPB"), Some(1.005));
/// println!("{}", t.to_markdown());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Sets the number of decimal places used when rendering (default 3).
    pub fn set_precision(&mut self, precision: usize) -> &mut Self {
        self.precision = precision;
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(String::as_str)
    }

    /// Row labels in insertion order.
    pub fn row_labels(&self) -> impl Iterator<Item = &str> {
        self.rows.iter().map(|(l, _)| l.as_str())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not have exactly one value per column.
    pub fn push_row(&mut self, label: impl Into<String>, cells: &[f64]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), cells.to_vec()));
        self
    }

    /// Looks up a cell by row label and column header.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let (_, cells) = self.rows.iter().find(|(l, _)| l == row)?;
        cells.get(col).copied()
    }

    /// Returns one column's values in row order.
    pub fn column_values(&self, column: &str) -> Option<Vec<f64>> {
        let col = self.columns.iter().position(|c| c == column)?;
        Some(self.rows.iter().map(|(_, cells)| cells[col]).collect())
    }

    /// Renders as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str("| |");
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in cells {
                out.push_str(&format!(" {v:.prec$} |", prec = self.precision));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV with the title in a leading comment line.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(label);
            for v in cells {
                out.push_str(&format!(",{v:.prec$}", prec = self.precision));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(self.title.len().min(24)))
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(8)
            .max(self.precision + 4);
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>col_w$}")?;
        }
        writeln!(f)?;
        for (label, cells) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in cells {
                write!(f, " {v:>col_w$.prec$}", prec = self.precision)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row("r1", &[1.0, 2.0]);
        t.push_row("r2", &[3.0, 4.0]);
        t
    }

    #[test]
    fn get_finds_cells_by_name() {
        let t = sample();
        assert_eq!(t.get("r1", "b"), Some(2.0));
        assert_eq!(t.get("r2", "a"), Some(3.0));
        assert_eq!(t.get("zz", "a"), None);
        assert_eq!(t.get("r1", "zz"), None);
    }

    #[test]
    fn column_values_preserve_row_order() {
        let t = sample();
        assert_eq!(t.column_values("a"), Some(vec![1.0, 3.0]));
        assert_eq!(t.column_values("nope"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_row_rejects_wrong_width() {
        let mut t = Table::new("t", &["a"]);
        t.push_row("r", &[1.0, 2.0]);
    }

    #[test]
    fn markdown_contains_all_labels() {
        let md = sample().to_markdown();
        for s in ["r1", "r2", "| a |", "**t**"] {
            assert!(md.contains(s), "missing {s:?} in {md}");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# t");
        assert_eq!(lines[1], "label,a,b");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn display_is_nonempty_and_aligned() {
        let shown = format!("{}", sample());
        assert!(shown.contains("== t =="));
        assert!(shown.contains("r1"));
    }

    #[test]
    fn len_and_is_empty() {
        let t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}

//! Fixed-width bucketed histograms.

use std::fmt;

/// A histogram with fixed-width buckets over `[0, bucket_width * buckets)`
/// and an overflow bucket for everything beyond.
///
/// Used for distributions the paper discusses qualitatively — store-burst
/// lengths, SB residency times, miss latencies — so experiments can print
/// them and tests can assert on their shape.
///
/// # Examples
///
/// ```
/// use spb_stats::Histogram;
///
/// let mut h = Histogram::new("sb_residency", 10, 8);
/// h.record(0);
/// h.record(25);
/// h.record(1_000_000); // lands in the overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(2), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: String,
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram named `name` with `buckets` buckets of width
    /// `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(name: impl Into<String>, bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            name: name.into(),
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`) using bucket
    /// upper edges; samples in the overflow bucket report the observed
    /// maximum.
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width - 1;
            }
        }
        self.max
    }

    /// Merges another histogram's samples into this one.
    ///
    /// # Panics
    ///
    /// Panics if the geometries (bucket width/count) differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Clears all samples (e.g. after warm-up).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: n={} mean={:.2} max={}",
            self.name,
            self.count,
            self.mean(),
            self.max
        )?;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                writeln!(
                    f,
                    "  [{:>8}, {:>8}): {}",
                    i as u64 * self.bucket_width,
                    (i as u64 + 1) * self.bucket_width,
                    b
                )?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "  overflow: {}", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_buckets() {
        let mut h = Histogram::new("h", 4, 4);
        h.record(0);
        h.record(3);
        h.record(4);
        h.record(15);
        h.record(16);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn mean_and_max_track_samples() {
        let mut h = Histogram::new("h", 10, 2);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.max(), 4);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new("h", 1, 1);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantile_reports_bucket_upper_edge() {
        let mut h = Histogram::new("h", 10, 10);
        for v in [1u64, 2, 3, 50] {
            h.record(v);
        }
        // Three of four samples are below 10, so p75 is in bucket 0.
        assert_eq!(h.quantile(0.75), 9);
        // The max sample defines p100's bucket.
        assert_eq!(h.quantile(1.0), 59);
    }

    #[test]
    fn overflow_quantile_returns_observed_max() {
        let mut h = Histogram::new("h", 1, 1);
        h.record(100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new("h", 2, 2);
        h.record(1);
        h.record(10);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new("a", 4, 4);
        let mut b = Histogram::new("b", 4, 4);
        a.record(1);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_count(0), 1);
        assert_eq!(a.bucket_count(1), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max(), 100);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new("a", 4, 4);
        let b = Histogram::new("b", 8, 4);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        let _ = Histogram::new("h", 0, 1);
    }
}

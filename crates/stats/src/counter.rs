//! Named event counters.

use std::fmt;

/// A named, monotonically increasing event counter.
///
/// Counters are the simulator's basic instrument: every cache hit, MSHR
/// allocation, SB-induced stall cycle and prefetch outcome ends up in one.
/// They are deliberately plain `u64`s with a name so collections of them
/// serialize naturally into result files.
///
/// # Examples
///
/// ```
/// use spb_stats::Counter;
///
/// let mut c = Counter::new("sb_stall_cycles");
/// c.inc();
/// c.add(9);
/// assert_eq!(c.value(), 10);
/// assert_eq!(c.name(), "sb_stall_cycles");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter with the given name, starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Resets the counter to zero, e.g. at the end of a warm-up phase.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// This counter's value as a fraction of `denom`'s value.
    ///
    /// Returns 0.0 when the denominator is zero, which is the convention
    /// used throughout the experiment reports (an application that never
    /// stalls has a 0% stall ratio, not an undefined one).
    pub fn ratio_of(&self, denom: &Counter) -> f64 {
        if denom.value == 0 {
            0.0
        } else {
            self.value as f64 / denom.value as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new("counter")
    }
}

/// A pair of counters tracking occurrences out of opportunities,
/// e.g. mispredicted branches out of all branches.
///
/// # Examples
///
/// ```
/// use spb_stats::counter::Ratio;
///
/// let mut mpki = Ratio::new("branch_mispredicts");
/// mpki.record(true);
/// mpki.record(false);
/// mpki.record(false);
/// assert!((mpki.rate() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ratio {
    name: String,
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates a named ratio starting at 0 / 0.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            hits: 0,
            total: 0,
        }
    }

    /// The ratio's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one opportunity; `hit` marks whether the event occurred.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of recorded occurrences.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of recorded opportunities.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Occurrences per opportunity in `[0, 1]`; 0.0 when nothing was
    /// recorded.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Resets both sides of the ratio.
    pub fn reset(&mut self) {
        self.hits = 0;
        self.total = 0;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}/{} ({:.2}%)",
            self.name,
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_at_zero_and_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(2);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn counter_reset_clears_value_but_keeps_name() {
        let mut c = Counter::new("warmup");
        c.add(100);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.name(), "warmup");
    }

    #[test]
    fn ratio_of_zero_denominator_is_zero() {
        let a = Counter::new("a");
        let b = Counter::new("b");
        assert_eq!(a.ratio_of(&b), 0.0);
    }

    #[test]
    fn ratio_of_computes_fraction() {
        let mut a = Counter::new("a");
        let mut b = Counter::new("b");
        a.add(1);
        b.add(4);
        assert!((a.ratio_of(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratio_rate_and_reset() {
        let mut r = Ratio::new("r");
        assert_eq!(r.rate(), 0.0);
        r.record(true);
        r.record(true);
        r.record(false);
        assert_eq!(r.hits(), 2);
        assert_eq!(r.total(), 3);
        r.reset();
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        let c = Counter::new("c");
        let r = Ratio::new("r");
        assert!(!format!("{c}").is_empty());
        assert!(!format!("{r}").is_empty());
    }
}

//! Normalization and aggregation helpers used by every experiment.
//!
//! The paper reports almost everything as a value *normalized to a
//! baseline* (the ideal SB, or the at-commit policy) and aggregates
//! applications with the *geometric mean* ("ALL" and "SB-BOUND" bars).
//! These helpers implement exactly those operations.

/// Geometric mean of a slice of positive values.
///
/// The geometric mean is only defined for positive inputs, so the
/// degenerate cases get an explicit sentinel instead of a silent
/// clamp: an **empty slice or any non-positive entry returns 0.0**
/// (a value no real measurement produces — every metric fed to this
/// is a positive cycle count, IPC or ratio), never NaN and never a
/// denormal-sized artifact of clamping. Callers that need to
/// distinguish "degenerate input" from "legitimately tiny mean" can
/// use [`geomean_checked`].
///
/// # Examples
///
/// ```
/// use spb_stats::summary::geomean;
/// assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// assert_eq!(geomean(&[0.0, 1.0]), 0.0); // sentinel, not a clamp
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    geomean_checked(values).unwrap_or(0.0)
}

/// Geometric mean, or `None` when it is undefined (empty input, or any
/// entry that is not a positive finite number).
///
/// # Examples
///
/// ```
/// use spb_stats::summary::geomean_checked;
/// assert!(geomean_checked(&[]).is_none());
/// assert!(geomean_checked(&[1.0, -2.0]).is_none());
/// assert!((geomean_checked(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
/// ```
pub fn geomean_checked(values: &[f64]) -> Option<f64> {
    // `v > 0.0 && v.is_finite()` is false for NaN, so this also
    // rejects unordered inputs.
    if values.is_empty() || !values.iter().all(|&v| v > 0.0 && v.is_finite()) {
        return None;
    }
    let sum_logs: f64 = values.iter().map(|&v| v.ln()).sum();
    Some((sum_logs / values.len() as f64).exp())
}

/// Arithmetic mean; 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use spb_stats::summary::mean;
/// assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Normalizes `value` to `baseline` (i.e. `value / baseline`).
///
/// Returns 0.0 when the baseline is zero; reports treat a zero baseline
/// as "metric absent".
///
/// # Examples
///
/// ```
/// use spb_stats::summary::normalize;
/// assert_eq!(normalize(50.0, 100.0), 0.5);
/// assert_eq!(normalize(1.0, 0.0), 0.0);
/// ```
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Normalizes each element of `values` to the matching element of
/// `baselines`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalize_all(values: &[f64], baselines: &[f64]) -> Vec<f64> {
    assert_eq!(
        values.len(),
        baselines.len(),
        "normalize_all: slice length mismatch"
    );
    values
        .iter()
        .zip(baselines)
        .map(|(&v, &b)| normalize(v, b))
        .collect()
}

/// Speedup of `time` relative to `baseline_time`: `baseline / time`.
///
/// This is the inverse of [`normalize`] and is what "performance
/// normalized to Ideal" means in Figures 5, 6, 16 and 17 when the
/// underlying measurement is execution time.
///
/// # Examples
///
/// ```
/// use spb_stats::summary::speedup;
/// assert_eq!(speedup(50.0, 100.0), 2.0);
/// ```
pub fn speedup(time: f64, baseline_time: f64) -> f64 {
    if time == 0.0 {
        0.0
    } else {
        baseline_time / time
    }
}

/// Relative change of `value` versus `baseline` in percent
/// (`+10.0` means 10% above the baseline).
///
/// # Examples
///
/// ```
/// use spb_stats::summary::percent_change;
/// assert!((percent_change(110.0, 100.0) - 10.0).abs() < 1e-12);
/// ```
pub fn percent_change(value: f64, baseline: f64) -> f64 {
    (normalize(value, baseline) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        let v = geomean(&[3.5, 3.5, 3.5]);
        assert!((v - 3.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean_for_spread_data() {
        let data = [1.0, 100.0];
        assert!(geomean(&data) < mean(&data));
    }

    #[test]
    fn geomean_tolerates_zero_without_nan() {
        // Degenerate inputs get the documented 0.0 sentinel — finite,
        // and visibly wrong in a report rather than quietly clamped.
        let v = geomean(&[0.0, 1.0]);
        assert!(v.is_finite());
        assert_eq!(v, 0.0);
        assert_eq!(geomean(&[1.0, -3.0]), 0.0);
        assert_eq!(geomean(&[1.0, f64::NAN]), 0.0);
        assert_eq!(geomean(&[1.0, f64::INFINITY]), 0.0);
    }

    #[test]
    fn geomean_checked_distinguishes_degenerate_inputs() {
        assert_eq!(geomean_checked(&[]), None);
        assert_eq!(geomean_checked(&[0.0]), None);
        let tiny = geomean_checked(&[1e-300]).unwrap();
        assert!((tiny / 1e-300 - 1.0).abs() < 1e-12, "tiny mean {tiny}");
        assert!((geomean_checked(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_matches_elementwise() {
        let v = normalize_all(&[2.0, 4.0], &[4.0, 4.0]);
        assert_eq!(v, vec![0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn normalize_all_rejects_mismatched_lengths() {
        let _ = normalize_all(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn speedup_of_zero_time_is_zero() {
        assert_eq!(speedup(0.0, 10.0), 0.0);
    }

    #[test]
    fn percent_change_is_symmetric_around_baseline() {
        assert!((percent_change(90.0, 100.0) + 10.0).abs() < 1e-12);
    }
}

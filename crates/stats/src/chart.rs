//! Terminal bar charts for result tables.
//!
//! The experiment binaries print [`Table`]s; this module renders a
//! table column as a horizontal ASCII bar chart so shapes (the thing
//! this reproduction is judged on) are visible at a glance in a
//! terminal, without any plotting dependency.

use crate::table::Table;
use std::fmt::Write as _;

/// Width of the bar area in characters.
const BAR_WIDTH: usize = 40;

/// Renders one column of `table` as a horizontal bar chart.
///
/// Bars scale to the column's maximum. A reference line can be drawn at
/// `reference` (e.g. 1.0 for normalized metrics), marked with `┊` where
/// it falls inside a bar's range.
///
/// Returns `None` if the column does not exist or the table is empty.
///
/// # Examples
///
/// ```
/// use spb_stats::{chart, Table};
///
/// let mut t = Table::new("Fig. 5", &["spb"]);
/// t.push_row("SB56", &[0.983]);
/// t.push_row("SB14", &[0.951]);
/// let art = chart::render_column(&t, "spb", Some(1.0)).unwrap();
/// assert!(art.contains("SB56"));
/// ```
pub fn render_column(table: &Table, column: &str, reference: Option<f64>) -> Option<String> {
    let values = table.column_values(column)?;
    if values.is_empty() {
        return None;
    }
    let max = values
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(reference.unwrap_or(f64::NEG_INFINITY))
        .max(1e-12);
    let label_w = table.row_labels().map(str::len).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{} — {column}", table.title());
    let ref_col = reference.map(|r| ((r / max) * BAR_WIDTH as f64).round() as usize);
    for (label, v) in table.row_labels().zip(&values) {
        let filled = ((v / max) * BAR_WIDTH as f64).round() as usize;
        let mut bar: Vec<char> = (0..BAR_WIDTH)
            .map(|i| if i < filled { '█' } else { ' ' })
            .collect();
        if let Some(rc) = ref_col {
            let rc = rc.min(BAR_WIDTH - 1);
            if bar[rc] == ' ' {
                bar[rc] = '┊';
            }
        }
        let bar: String = bar.into_iter().collect();
        let _ = writeln!(out, "{label:label_w$} |{bar}| {v:.3}");
    }
    Some(out)
}

/// Renders every column of the table, stacked.
pub fn render_all(table: &Table, reference: Option<f64>) -> String {
    let mut out = String::new();
    let columns: Vec<String> = table.columns().map(str::to_string).collect();
    for c in columns {
        if let Some(chart) = render_column(table, &c, reference) {
            out.push_str(&chart);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row("one", &[1.0, 0.5]);
        t.push_row("two", &[2.0, 0.25]);
        t
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        let art = render_column(&sample(), "a", None).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        let count = |s: &str| s.matches('█').count();
        assert_eq!(count(lines[2]), BAR_WIDTH, "max value fills the bar");
        assert_eq!(count(lines[1]), BAR_WIDTH / 2);
    }

    #[test]
    fn reference_line_appears_in_short_bars() {
        let art = render_column(&sample(), "b", Some(0.5)).unwrap();
        // The 0.25 row is below the 0.5 reference: the marker shows.
        let two_line = art.lines().find(|l| l.starts_with("two")).unwrap();
        assert!(two_line.contains('┊'), "{two_line}");
    }

    #[test]
    fn missing_column_returns_none() {
        assert!(render_column(&sample(), "zzz", None).is_none());
    }

    #[test]
    fn render_all_covers_every_column() {
        let art = render_all(&sample(), None);
        assert!(art.contains("— a"));
        assert!(art.contains("— b"));
    }

    #[test]
    fn empty_table_is_handled() {
        let t = Table::new("empty", &["x"]);
        assert!(render_column(&t, "x", None).is_none());
    }
}

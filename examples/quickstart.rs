//! Quickstart: build a system, run a store-bursty workload, and compare
//! the store-prefetch policies the paper compares.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use store_prefetch_burst::sim::config::{PolicyKind, SimConfig};
use store_prefetch_burst::sim::Simulation;
use store_prefetch_burst::stats::Table;
use store_prefetch_burst::trace::profile::AppProfile;

fn main() {
    // x264 is the canonical SB-bound application: motion compensation
    // memcpy's frames around, producing long bursts of contiguous
    // 8-byte stores that fill the store buffer.
    let app = AppProfile::by_name("x264").expect("x264 is in the SPEC 2017 suite");

    // A Skylake-like core (Table I) with the SMT-4 per-thread SB of 14
    // entries — the configuration where store prefetching matters most.
    let base = SimConfig::quick().with_sb(14);

    let policies = [
        PolicyKind::None,
        PolicyKind::AtExecute,
        PolicyKind::AtCommit,
        PolicyKind::spb_default(),
        PolicyKind::IdealSb,
    ];

    println!("running x264 under five store-prefetch policies (SB14)…\n");
    let mut table = Table::new(
        "x264 @ 14-entry SB",
        &["cycles", "IPC", "SB-stall %", "pf success %"],
    );
    let mut baseline_cycles = None;
    for policy in policies {
        let result =
            Simulation::with_config(&app, &base.clone().with_policy(policy)).run_or_panic();
        if policy == PolicyKind::AtCommit {
            baseline_cycles = Some(result.cycles);
        }
        let succ: u64 = result.mem.prefetch_successful.iter().sum();
        let issued: u64 = result.mem.prefetch_requests.iter().sum();
        table.push_row(
            policy.label(),
            &[
                result.cycles as f64,
                result.ipc(),
                result.sb_stall_ratio() * 100.0,
                100.0 * succ as f64 / issued.max(1) as f64,
            ],
        );
    }
    table.set_precision(2);
    println!("{table}");

    if let Some(base_cycles) = baseline_cycles {
        let spb =
            Simulation::with_config(&app, &base.clone().with_policy(PolicyKind::spb_default()))
                .run_or_panic();
        println!(
            "SPB speedup over at-commit: {:.1}%",
            (base_cycles as f64 / spb.cycles as f64 - 1.0) * 100.0
        );
    }
}

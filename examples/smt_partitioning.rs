//! The SMT partitioning study: what happens to a store-bursty
//! application when the SB is statically partitioned among hardware
//! threads (Intel's SMT policy — §I of the paper).
//!
//! SB56 is the full Skylake store buffer; SB28 is the per-thread share
//! under SMT-2; SB14 under SMT-4. SPB recovers most of the loss.
//!
//! ```sh
//! cargo run --release --example smt_partitioning
//! ```

use store_prefetch_burst::sim::config::{PolicyKind, SimConfig};
use store_prefetch_burst::sim::Simulation;
use store_prefetch_burst::stats::{summary::geomean, Table};
use store_prefetch_burst::trace::profile::AppProfile;

fn main() {
    let apps = AppProfile::spec2017_sb_bound();
    println!(
        "SB-bound SPEC CPU 2017 applications: {:?}\n",
        apps.iter()
            .map(|a| a.name().to_string())
            .collect::<Vec<_>>()
    );

    let mut table = Table::new(
        "SMT partitioning — geomean perf of SB-bound apps vs ideal SB",
        &["at-commit", "spb"],
    );
    let quick = SimConfig::quick();
    let ideal: Vec<u64> = apps
        .iter()
        .map(|a| {
            Simulation::with_config(a, &quick.clone().with_policy(PolicyKind::IdealSb))
                .run_or_panic()
                .cycles
        })
        .collect();

    for (smt, sb) in [
        ("SMT-1 (SB56)", 56usize),
        ("SMT-2 (SB28)", 28),
        ("SMT-4 (SB14)", 14),
    ] {
        let mut row = Vec::new();
        for policy in [PolicyKind::AtCommit, PolicyKind::spb_default()] {
            let normalized: Vec<f64> = apps
                .iter()
                .zip(&ideal)
                .map(|(a, &ideal_cycles)| {
                    let r =
                        Simulation::with_config(a, &quick.clone().with_sb(sb).with_policy(policy))
                            .run_or_panic();
                    ideal_cycles as f64 / r.cycles as f64
                })
                .collect();
            row.push(geomean(&normalized));
        }
        table.push_row(smt, &row);
    }
    println!("{table}");
    println!("Reading: 1.0 = matches an ideal (1024-entry) store buffer.");
    println!("The at-commit column collapses as the per-thread SB shrinks;");
    println!("SPB keeps each SMT level near ideal — the paper's headline.");
}

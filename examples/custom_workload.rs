//! Authoring a custom workload from scratch.
//!
//! Shows the full user-facing path: compose phases into an
//! [`AppProfile`], run it under two policies, and inspect the counters —
//! the workflow for studying a store pattern the built-in suites don't
//! cover (here: a database-style log writer that alternates hash-table
//! updates with sequential WAL appends).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use store_prefetch_burst::sim::config::{PolicyKind, SimConfig};
use store_prefetch_burst::sim::Simulation;
use store_prefetch_burst::trace::generators::ComputeParams;
use store_prefetch_burst::trace::phased::PhaseSpec;
use store_prefetch_burst::trace::profile::{AppProfile, Suite};
use store_prefetch_burst::trace::CodeRegion;

fn main() {
    // A synthetic "log-structured store": point updates into a large
    // hash table (sparse stores, un-prefetchable), then a sequential
    // write-ahead-log append (a store burst SPB can catch), then fsync
    // bookkeeping (compute + pointer chasing).
    let profile = AppProfile::new(
        "logwriter",
        Suite::Spec2017,
        true, // we expect it to be SB-bound; the run verifies
        1,
        vec![
            PhaseSpec::Compute(ComputeParams {
                count: 20_000,
                fp_ratio: 0.05,
                mispredict_rate: 0.01,
                branch_every: 6,
                dep_density: 0.4,
            }),
            PhaseSpec::SparseStores {
                count: 300,
                footprint_pages: 4,
                gap: 8,
            },
            PhaseSpec::Memcpy {
                bytes: 8192, // one WAL segment
                region: CodeRegion::Memcpy,
                footprint_pages: 1 << 15,
                shuffle: false,
            },
            PhaseSpec::PointerChase {
                count: 200,
                pool_pages: 64,
            },
        ],
    );

    println!("custom 'logwriter' workload, 14-entry SB:\n");
    for policy in [PolicyKind::AtCommit, PolicyKind::spb_default()] {
        let cfg = SimConfig::quick().with_sb(14).with_policy(policy);
        let r = Simulation::with_config(&profile, &cfg).run_or_panic();
        println!(
            "{:>10}: {} cycles, IPC {:.3}, SB stalls {:.1}%",
            r.policy,
            r.cycles,
            r.ipc(),
            r.sb_stall_ratio() * 100.0
        );
        println!(
            "            WAL-append stalls (memcpy region): {} cycles",
            r.cpu.sb_stalls_in(CodeRegion::Memcpy)
        );
        println!(
            "            hash-update stalls (app region):   {} cycles",
            r.cpu.sb_stalls_in(CodeRegion::Application)
        );
        println!("            {}", r.energy);
    }
    println!("\nSPB accelerates the WAL appends (contiguous) while leaving");
    println!("the hash updates alone (no pattern) — selective by design.");
}

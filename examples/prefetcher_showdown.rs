//! Prefetcher showdown: SPB versus (and on top of) the generic cache
//! prefetchers — stream/stride, fixed-aggressive, and feedback-directed
//! adaptive (the paper's §VI-D comparison).
//!
//! Demonstrates the paper's point that generic prefetchers, however
//! aggressive, cannot remove SB-induced stalls: their window is anchored
//! to the demand stream, while SPB predicts a whole page ahead.
//!
//! ```sh
//! cargo run --release --example prefetcher_showdown
//! ```

use store_prefetch_burst::mem::prefetch::PrefetcherKind;
use store_prefetch_burst::sim::config::{PolicyKind, SimConfig};
use store_prefetch_burst::sim::Simulation;
use store_prefetch_burst::stats::Table;
use store_prefetch_burst::trace::profile::AppProfile;

fn main() {
    let app = AppProfile::by_name("bwaves").expect("suite app");
    println!("bwaves (kernel clear_page store bursts) at a 14-entry SB\n");

    let mut table = Table::new(
        "cycles by generic prefetcher × store policy (lower is better)",
        &["at-commit", "spb"],
    );
    for (name, pk) in [
        ("no prefetcher", PrefetcherKind::None),
        ("stream/stride", PrefetcherKind::Stride),
        ("aggressive", PrefetcherKind::Aggressive),
        ("adaptive (FDP)", PrefetcherKind::Adaptive),
    ] {
        let mut cfg = SimConfig::quick().with_sb(14);
        cfg.mem.prefetcher = pk;
        let ac = Simulation::with_config(&app, &cfg).run_or_panic();
        let spb =
            Simulation::with_config(&app, &cfg.clone().with_policy(PolicyKind::spb_default()))
                .run_or_panic();
        table.push_row(name, &[ac.cycles as f64, spb.cycles as f64]);
    }
    table.set_precision(0);
    println!("{table}");
    println!("Within each row, SPB wins: generic prefetchers cannot cover");
    println!("store bursts. Down each column the generic prefetcher helps");
    println!("the loads — the two mechanisms are orthogonal (paper §VI-D).");
}

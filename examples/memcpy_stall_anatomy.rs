//! Anatomy of SB-induced stalls in a memcpy loop.
//!
//! Builds a raw core + memory system by hand (no profiles, no runner) and
//! walks a single large `memcpy` through it, printing the Top-Down stall
//! breakdown, the Figure 3-style attribution of stalls to code regions,
//! and the SPB detector's own view of the store stream.
//!
//! ```sh
//! cargo run --release --example memcpy_stall_anatomy
//! ```

use store_prefetch_burst::cpu::{config::CoreConfig, core::Core, policy::AtCommitPolicy};
use store_prefetch_burst::mem::{MemoryConfig, MemorySystem};
use store_prefetch_burst::spb::detector::{SpbConfig, SpbDetector};
use store_prefetch_burst::stats::StallCause;
use store_prefetch_burst::trace::generators::MemcpyGen;
use store_prefetch_burst::trace::{CodeRegion, OpKind, TraceSource};

const COPY_BYTES: u64 = 64 * 1024;

fn main() {
    // --- 1. What does the SPB detector see in this store stream? -------
    let mut probe = MemcpyGen::new(0x1000_0000, 0x2000_0000, COPY_BYTES, CodeRegion::Memcpy, 7);
    let mut detector = SpbDetector::new(SpbConfig::default());
    let mut bursts = Vec::new();
    while let Some(op) = probe.next_op() {
        if let OpKind::Store { addr, .. } = op.kind() {
            if let Some(b) = detector.observe_store(addr) {
                bursts.push(b);
            }
        }
    }
    println!("SPB detector over a {COPY_BYTES}-byte memcpy:");
    println!("  storage cost : {} bits", detector.storage_bits());
    println!("  window checks: {}", detector.checks());
    println!(
        "  page bursts  : {} (first covers blocks {:?})",
        bursts.len(),
        bursts.first()
    );

    // --- 2. How does the pipeline experience the same copy? ------------
    for sb in [56usize, 14] {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let trace = MemcpyGen::new(0x1000_0000, 0x2000_0000, COPY_BYTES, CodeRegion::Memcpy, 7);
        let cfg = CoreConfig::skylake().with_sb_entries(sb);
        let mut core = Core::new(0, cfg, Box::new(trace), Box::new(AtCommitPolicy::new()));
        let mut now = 0;
        while !core.is_drained() {
            mem.tick(now);
            core.cycle(&mut mem, now);
            now += 1;
        }
        let td = core.topdown();
        println!("\nmemcpy with at-commit, SB{sb}:");
        println!("  cycles       : {now}");
        println!("  IPC          : {:.3}", td.ipc());
        println!(
            "  SB stalls    : {} cycles ({:.1}% of cycles)",
            td.stall_cycles(StallCause::StoreBuffer),
            td.sb_stall_ratio() * 100.0
        );
        println!(
            "  stalls inside memcpy region: {}",
            core.stats().sb_stalls_in(CodeRegion::Memcpy)
        );
        println!(
            "  store prefetches — successful: {}, late: {} (at-commit RFOs issue at the end of a store's life)",
            mem.stats().prefetch_successful.iter().sum::<u64>(),
            mem.stats().prefetch_late.iter().sum::<u64>(),
        );
    }
}

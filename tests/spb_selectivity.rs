//! SPB's selectivity: the detector must fire on exactly the patterns
//! the paper targets and stay silent on everything else — including
//! store streams that *look* regular but are not bursts.

use store_prefetch_burst::spb::detector::{SpbConfig, SpbDetector};
use store_prefetch_burst::trace::generators::{
    GatherScatterGen, MemcpyGen, MemsetGen, StridedStoreGen,
};
use store_prefetch_burst::trace::{CodeRegion, OpKind, TraceSource};

fn triggers_on(mut source: impl TraceSource) -> u64 {
    let mut d = SpbDetector::new(SpbConfig::default());
    while let Some(op) = source.next_op() {
        if let OpKind::Store { addr, .. } = op.kind() {
            let _ = d.observe_store(addr);
        }
    }
    d.triggers()
}

#[test]
fn fires_on_memset_and_memcpy() {
    assert!(triggers_on(MemsetGen::new(0x10_0000, 64 * 1024, CodeRegion::Memset, 1)) > 0);
    assert!(
        triggers_on(MemcpyGen::new(
            0x10_0000,
            0x80_0000,
            64 * 1024,
            CodeRegion::Memcpy,
            1
        )) > 0
    );
}

#[test]
fn fires_on_shuffled_copies_too() {
    // Compiler-shuffled unrolled copies keep block contiguity: SPB's
    // whole reason for detecting at block rather than address level.
    let g = MemcpyGen::new(0x10_0000, 0x80_0000, 64 * 1024, CodeRegion::Memcpy, 1)
        .with_intra_block_shuffle();
    assert!(triggers_on(g) > 0);
}

#[test]
fn silent_on_page_strided_stores() {
    // Matrix-transpose column writes: stride 4 KiB. Block deltas are 64,
    // never +1 — zero bursts.
    assert_eq!(
        triggers_on(StridedStoreGen::new(0x10_0000, 4096, 50_000, 1)),
        0
    );
}

#[test]
fn fires_on_block_strided_stores() {
    // Stride exactly one block: every store opens the next block. The
    // deltas are +1, so this *is* a (sparse) forward run — SPB fires,
    // and usefully so: each prefetched block will receive its store.
    assert!(triggers_on(StridedStoreGen::new(0x10_0000, 64, 50_000, 1)) > 0);
}

#[test]
fn silent_on_two_block_strided_stores() {
    // Stride two blocks: deltas of +2 reset the counter.
    assert_eq!(
        triggers_on(StridedStoreGen::new(0x10_0000, 128, 50_000, 1)),
        0
    );
}

#[test]
fn silent_on_gather_scatter() {
    let g = GatherScatterGen::new(0x10_0000, 1 << 14, 0x400_0000, 1 << 14, 50_000, 1);
    assert_eq!(triggers_on(g), 0);
}

#[test]
fn spb_does_not_slow_down_gather_scatter() {
    use store_prefetch_burst::cpu::policy::AtCommitPolicy;
    use store_prefetch_burst::cpu::{config::CoreConfig, core::Core};
    use store_prefetch_burst::mem::{MemoryConfig, MemorySystem};
    use store_prefetch_burst::spb::SpbPolicy;

    let run = |policy: Box<dyn store_prefetch_burst::cpu::StorePrefetchPolicy + Send>| {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let trace = GatherScatterGen::new(0x10_0000, 1 << 12, 0x400_0000, 1 << 12, 20_000, 3);
        let mut core = Core::new(
            0,
            CoreConfig::skylake().with_sb_entries(14),
            Box::new(trace),
            policy,
        );
        core.run_until_committed(&mut mem, 50_000)
    };
    let at_commit = run(Box::new(AtCommitPolicy::new()));
    let spb = run(Box::new(SpbPolicy::with_paper_defaults()));
    assert_eq!(
        spb, at_commit,
        "with zero triggers, SPB must be cycle-identical to at-commit"
    );
}

//! Golden test for the paper's Figure 4 running example (bottom half).
//!
//! Eight 64-bit stores fill block `0x00`, the ninth store touches block
//! `0x01`, the SPB detector (N = 8) fires and the L1 controller receives
//! a burst for the remaining blocks of the page. The per-cycle protocol
//! view must match the figure:
//!
//! - T0: demand store misses — `I -> IM: Getx`;
//! - T1..T7: per-store `WritePF` requests are discarded (`PopReq`)
//!   because the block is already being fetched with ownership;
//! - T8: the detector's registers read `Sat = 1 -> 0`, `St Count = 0`,
//!   and the burst issues `GetPFx` (`I -> PF_IM`) for blocks `0x080+`.

use store_prefetch_burst::mem::system::{RfoResponse, StoreDrainOutcome};
use store_prefetch_burst::mem::{MemoryConfig, MemorySystem, RfoOrigin};
use store_prefetch_burst::spb::detector::{Burst, SpbConfig, SpbDetector};

#[test]
fn figure4_protocol_sequence() {
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut spb = SpbDetector::new(SpbConfig { n: 8, dedupe: true });
    let pc = 0x400;

    // T0: the first store of the burst reaches the head of the SB and
    // misses: a demand GetX. (In the figure the at-commit WritePF and
    // the demand write race; the demand arrives first here.)
    let t0 = mem.store_drain(0, 0x000, 0);
    assert!(
        matches!(t0, StoreDrainOutcome::Retry { .. }),
        "T0 must miss (I -> IM)"
    );
    assert_eq!(spb.observe_store(0x000), None);

    // T1..T7: subsequent stores commit; their at-commit WritePF requests
    // find the block already in a transient-owned state and are popped.
    for (t, addr) in (1u64..=7).zip([0x008u64, 0x010, 0x018, 0x020, 0x028, 0x030, 0x038]) {
        let resp = mem.store_prefetch(0, addr, pc, t, RfoOrigin::AtCommit);
        assert_eq!(
            resp,
            RfoResponse::Discarded,
            "T{t}: WritePF must be PopReq'd"
        );
        assert_eq!(spb.observe_store(addr), None, "T{t}: no burst yet");
    }

    // T8: store 0x040 (block 1). The detector window closes: Sat hits 1,
    // meets the N/8 = 1 threshold, counters reset, and the burst covers
    // the rest of the page.
    let burst = spb.observe_store(0x040).expect("T8 generates the SPB");
    assert_eq!(burst, Burst { start: 2, end: 64 });

    // The at-commit WritePF for 0x040 itself misses (GetPFx for block 1)…
    let resp = mem.store_prefetch(0, 0x040, pc, 8, RfoOrigin::AtCommit);
    assert_eq!(
        resp,
        RfoResponse::Issued,
        "T8: WritePF 0x040 issues (I -> PF_IM)"
    );

    // …and the burst floods the L1 controller with GetPFx requests for
    // blocks 0x080.. — all fresh ownership prefetches.
    mem.enqueue_burst(0, burst.blocks(), 0);
    let mut issued = 0;
    let mut now = 9;
    while mem.burst_queue_len(0) > 0 {
        mem.tick(now);
        now += 1;
    }
    mem.finalize_stats();
    issued += mem.stats().prefetch_downstream[RfoOrigin::SpbBurst.index()];
    assert_eq!(
        issued, 62,
        "all remaining page blocks fetched with ownership"
    );

    // Once everything lands, the drains hit: M-state writes, no misses.
    let done = 10_000;
    for addr in (0x000u64..0x200).step_by(8) {
        match mem.store_drain(0, addr, done) {
            StoreDrainOutcome::Performed { l1_hit } => assert!(l1_hit),
            other => panic!("store {addr:#x} should hit after the burst, got {other:?}"),
        }
    }
}

/// The figure's register table: Sat and St Count transitions at T8.
#[test]
fn figure4_register_transitions() {
    let mut spb = SpbDetector::new(SpbConfig { n: 8, dedupe: true });
    for i in 0..8u64 {
        assert_eq!(spb.observe_store(i * 8), None);
    }
    // After T7 the count shows 8 (figure row T7).
    assert_eq!(spb.checks(), 0, "no window check yet");
    let burst = spb.observe_store(0x040);
    assert!(burst.is_some(), "T8 fires");
    assert_eq!(spb.checks(), 1);
    assert_eq!(spb.triggers(), 1);
}

//! Integration tests for the paper's headline claims, asserted on quick
//! budgets (the full budgets are exercised by `spb-experiments`).

use store_prefetch_burst::sim::config::{PolicyKind, SimConfig};
use store_prefetch_burst::sim::Simulation;
use store_prefetch_burst::stats::summary::geomean;
use store_prefetch_burst::trace::profile::AppProfile;

fn sb_bound() -> Vec<AppProfile> {
    // A representative subset keeps the test fast.
    ["bwaves", "x264", "fotonik3d"]
        .iter()
        .map(|n| AppProfile::by_name(n).unwrap())
        .collect()
}

/// Policies must order ideal ≥ SPB ≥ at-commit ≥ none on a store-bursty
/// application with a small SB (Figure 5's vertical ordering).
#[test]
fn policy_ordering_at_sb14() {
    let app = AppProfile::by_name("x264").unwrap();
    let cfg = SimConfig::quick().with_sb(14);
    let cycles = |p: PolicyKind| {
        Simulation::with_config(&app, &cfg.clone().with_policy(p))
            .run_or_panic()
            .cycles
    };
    let none = cycles(PolicyKind::None);
    let at_commit = cycles(PolicyKind::AtCommit);
    let spb = cycles(PolicyKind::spb_default());
    let ideal = cycles(PolicyKind::IdealSb);
    assert!(
        at_commit < none,
        "at-commit ({at_commit}) must beat none ({none})"
    );
    assert!(
        spb < at_commit,
        "SPB ({spb}) must beat at-commit ({at_commit})"
    );
    assert!(ideal <= spb, "ideal ({ideal}) bounds SPB ({spb})");
}

/// SB stalls must be monotone in SB size for the at-commit baseline
/// (Figure 1's shape).
#[test]
fn sb_stalls_monotone_in_sb_size() {
    for app in sb_bound() {
        let stall = |sb: usize| {
            Simulation::with_config(&app, &SimConfig::quick().with_sb(sb))
                .run_or_panic()
                .sb_stall_ratio()
        };
        let (s14, s28, s56) = (stall(14), stall(28), stall(56));
        assert!(
            s14 > s28 && s28 > s56,
            "{}: stalls must grow as the SB shrinks ({s56:.3} / {s28:.3} / {s14:.3})",
            app.name()
        );
    }
}

/// The SB-shrinking claim (§I): a 20-entry SB with SPB performs at least
/// as well as the 56-entry SB with at-commit prefetching.
#[test]
fn sb20_with_spb_matches_sb56_at_commit() {
    let apps = sb_bound();
    let speedups: Vec<f64> = apps
        .iter()
        .map(|app| {
            let base = Simulation::with_config(app, &SimConfig::quick().with_sb(56)).run_or_panic();
            let spb20 = Simulation::with_config(
                app,
                &SimConfig::quick()
                    .with_sb(20)
                    .with_policy(PolicyKind::spb_default()),
            )
            .run_or_panic();
            base.cycles as f64 / spb20.cycles as f64
        })
        .collect();
    let gm = geomean(&speedups);
    assert!(
        gm > 0.97,
        "SB20+SPB must be within a few percent of SB56 at-commit, got {gm:.3} ({speedups:?})"
    );
}

/// SPB must be neutral on applications without store bursts (it is
/// "highly selective": no pattern, no burst, no cost).
#[test]
fn spb_is_neutral_on_non_bursty_apps() {
    for name in ["mcf", "povray", "leela"] {
        let app = AppProfile::by_name(name).unwrap();
        let base = Simulation::with_config(&app, &SimConfig::quick().with_sb(56)).run_or_panic();
        let spb = Simulation::with_config(
            &app,
            &SimConfig::quick()
                .with_sb(56)
                .with_policy(PolicyKind::spb_default()),
        )
        .run_or_panic();
        let ratio = spb.cycles as f64 / base.cycles as f64;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "{name}: SPB must not perturb a burst-free app, ratio {ratio:.4}"
        );
    }
}

/// SPB's prefetch success rate must clearly exceed at-commit's on
/// SB-bound applications (Figure 11's headline).
#[test]
fn spb_success_rate_beats_at_commit() {
    use store_prefetch_burst::mem::RfoOrigin;
    let app = AppProfile::by_name("bwaves").unwrap();
    let cfg = SimConfig::quick().with_sb(56);
    let ac = Simulation::with_config(&app, &cfg).run_or_panic();
    let spb = Simulation::with_config(&app, &cfg.clone().with_policy(PolicyKind::spb_default()))
        .run_or_panic();
    let rate = |r: &store_prefetch_burst::sim::RunResult, o: RfoOrigin| {
        let i = o.index();
        let classified = r.mem.prefetch_successful[i]
            + r.mem.prefetch_late[i]
            + r.mem.prefetch_early[i]
            + r.mem.prefetch_never_used[i];
        r.mem.prefetch_successful[i] as f64 / classified.max(1) as f64
    };
    let ac_rate = rate(&ac, RfoOrigin::AtCommit);
    let spb_rate = rate(&spb, RfoOrigin::SpbBurst);
    assert!(
        spb_rate > ac_rate + 0.2,
        "SPB bursts must be far more successful: spb {spb_rate:.2} vs at-commit {ac_rate:.2}"
    );
}

/// The at-commit baseline itself is worth ~double-digit percent over no
/// store prefetching (§V: "+15% on average for SPEC CPU 2017").
#[test]
fn at_commit_beats_no_prefetching_noticeably() {
    let apps = sb_bound();
    let speedups: Vec<f64> = apps
        .iter()
        .map(|app| {
            let none =
                Simulation::with_config(app, &SimConfig::quick().with_policy(PolicyKind::None))
                    .run_or_panic();
            let ac = Simulation::with_config(app, &SimConfig::quick()).run_or_panic();
            none.cycles as f64 / ac.cycles as f64
        })
        .collect();
    let gm = geomean(&speedups);
    assert!(
        gm > 1.05,
        "at-commit must clearly beat none on SB-bound apps, got {gm:.3}"
    );
}

//! Cross-crate property tests: the core + memory pipeline as a whole.

use proptest::prelude::*;
use store_prefetch_burst::cpu::policy::{AtCommitPolicy, NoPolicy};
use store_prefetch_burst::cpu::{config::CoreConfig, core::Core};
use store_prefetch_burst::mem::{MemoryConfig, MemorySystem};
use store_prefetch_burst::spb::{SpbConfig, SpbPolicy};
use store_prefetch_burst::trace::generators::{ComputeGen, ComputeParams};
use store_prefetch_burst::trace::phased::{PhaseSpec, PhasedWorkload};
use store_prefetch_burst::trace::CodeRegion;

fn workload(seed: u64, burst_bytes: u64) -> PhasedWorkload {
    PhasedWorkload::new(
        vec![
            PhaseSpec::Compute(ComputeParams {
                count: 2000,
                ..Default::default()
            }),
            PhaseSpec::Memset {
                bytes: burst_bytes,
                region: CodeRegion::Memset,
                footprint_pages: 1 << 12,
            },
            PhaseSpec::SparseStores {
                count: 100,
                footprint_pages: 4,
                gap: 5,
            },
        ],
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline conserves µops: committed stores/loads/branches are
    /// each bounded by what the trace generated, IPC never exceeds the
    /// machine width, and SB occupancy never exceeds the configured SB.
    #[test]
    fn pipeline_conservation(seed in any::<u64>(), sb in 8usize..64, burst_kb in 1u64..8) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let cfg = CoreConfig::skylake().with_sb_entries(sb);
        let mut core = Core::new(0, cfg, Box::new(workload(seed, burst_kb * 1024)), Box::new(NoPolicy::new()));
        let mut now = 0;
        let mut max_occ = 0;
        while core.committed_uops() < 30_000 {
            mem.tick(now);
            core.cycle(&mut mem, now);
            max_occ = max_occ.max(core.sb_occupancy());
            now += 1;
        }
        prop_assert!(max_occ <= sb, "SB occupancy {max_occ} exceeded {sb}");
        let ipc = core.committed_uops() as f64 / now as f64;
        prop_assert!(ipc <= f64::from(core.config().commit_width) + 1e-9);
        let td = core.topdown();
        prop_assert!(td.total_stall_cycles() <= td.cycles());
    }

    /// Memory-system conservation: performed stores equal the stores the
    /// core drained; every load is serviced at some level (hits plus
    /// per-level services add up to the demand loads).
    #[test]
    fn memory_accounting_identities(seed in any::<u64>()) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let cfg = CoreConfig::skylake();
        let mut core = Core::new(0, cfg, Box::new(workload(seed, 4096)), Box::new(AtCommitPolicy::new()));
        let mut now = 0;
        while core.committed_uops() < 30_000 {
            mem.tick(now);
            core.cycle(&mut mem, now);
            now += 1;
        }
        let m = mem.stats();
        let serviced = m.load_l1_hits + m.load_l2_hits + m.load_l3_hits + m.load_remote_hits + m.load_dram;
        // Hit-under-fill loads are L1-serviced but counted as neither
        // hits nor misses at lower levels, so serviced ≤ loads.
        prop_assert!(serviced <= m.loads, "serviced {} > loads {}", serviced, m.loads);
        prop_assert!(m.stores_performed <= core.stats().committed_stores);
        prop_assert!(m.store_l1_ready_hits <= m.stores_performed);
    }

    /// SPB never loses to at-commit by more than noise on any workload
    /// from this family, and its burst traffic is bounded by pages
    /// actually touched.
    #[test]
    fn spb_never_catastrophic(seed in any::<u64>(), burst_kb in 1u64..8) {
        let run = |policy: Box<dyn store_prefetch_burst::cpu::StorePrefetchPolicy + Send>| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let cfg = CoreConfig::skylake().with_sb_entries(14);
            let mut core = Core::new(0, cfg, Box::new(workload(seed, burst_kb * 1024)), policy);
            let mut now = 0;
            while core.committed_uops() < 40_000 {
                mem.tick(now);
                core.cycle(&mut mem, now);
                now += 1;
            }
            now
        };
        let at_commit = run(Box::new(AtCommitPolicy::new()));
        let spb = run(Box::new(SpbPolicy::new(SpbConfig::default())));
        prop_assert!(
            (spb as f64) < 1.05 * at_commit as f64,
            "SPB regressed: {spb} vs {at_commit}"
        );
    }

    /// Determinism across the whole stack: identical seeds and configs
    /// give identical cycle counts and identical counter values.
    #[test]
    fn full_stack_determinism(seed in any::<u64>()) {
        let run = || {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let mut core = Core::new(
                0,
                CoreConfig::skylake(),
                Box::new(workload(seed, 2048)),
                Box::new(SpbPolicy::new(SpbConfig::default())),
            );
            let cycles = core.run_until_committed(&mut mem, 20_000);
            mem.finalize_stats();
            (cycles, core.topdown().clone(), mem.stats().clone())
        };
        let (c1, td1, m1) = run();
        let (c2, td2, m2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(td1, td2);
        prop_assert_eq!(m1, m2);
    }

    /// A pure compute trace never touches memory: zero loads, zero
    /// stores, zero prefetch traffic — SPB included.
    #[test]
    fn compute_only_is_memory_silent(seed in any::<u64>()) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let trace = ComputeGen::new(ComputeParams { count: 10_000, ..Default::default() }, seed);
        let mut core = Core::new(
            0,
            CoreConfig::skylake(),
            Box::new(trace),
            Box::new(SpbPolicy::new(SpbConfig::default())),
        );
        let _ = core.run_until_committed(&mut mem, 10_000);
        prop_assert_eq!(mem.stats().loads, 0);
        prop_assert_eq!(mem.stats().stores_performed, 0);
        prop_assert_eq!(mem.stats().total_prefetch_requests(), 0);
    }
}
